"""POSIX-like façade over the SCFS Agent.

The real SCFS mounts the agent behind FUSE-J; applications then use the
ordinary file API.  This module provides the equivalent programmatic surface:
an :class:`SCFSFileSystem` exposes handle-based calls (open/read/write/close/
fsync) plus the usual path-based operations (mkdir, readdir, rename, unlink,
stat, setfacl…), and convenience whole-file helpers used by the examples and
benchmarks.

It also encodes Table 1 — the durability level reached by each kind of call
depending on the configured backend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.types import Permission
from repro.core.agent import OpenFlags, SCFSAgent
from repro.core.metadata import FileMetadata
from repro.core.modes import BackendKind


class DurabilityLevel(enum.IntEnum):
    """The four durability levels of Table 1."""

    MAIN_MEMORY = 0
    LOCAL_DISK = 1
    CLOUD = 2
    CLOUD_OF_CLOUDS = 3


@dataclass(frozen=True)
class DurabilityRow:
    """One row of Table 1."""

    level: DurabilityLevel
    location: str
    latency: str
    fault_tolerance: str
    example_call: str


#: Table 1 of the paper, verbatim.
DURABILITY_TABLE: tuple[DurabilityRow, ...] = (
    DurabilityRow(DurabilityLevel.MAIN_MEMORY, "main memory", "microseconds", "none", "write"),
    DurabilityRow(DurabilityLevel.LOCAL_DISK, "local disk", "milliseconds", "crash", "fsync"),
    DurabilityRow(DurabilityLevel.CLOUD, "cloud", "seconds", "local disk", "close"),
    DurabilityRow(DurabilityLevel.CLOUD_OF_CLOUDS, "cloud-of-clouds", "seconds", "f clouds", "close"),
)


class SCFSFileSystem:
    """The mounted file system as seen by one user's applications."""

    def __init__(self, agent: SCFSAgent):
        self.agent = agent

    # -- identity ----------------------------------------------------------------

    @property
    def user(self) -> str:
        """Name of the user this mount belongs to."""
        return self.agent.principal.name

    @property
    def config(self):
        """The agent's :class:`~repro.core.config.SCFSConfig`."""
        return self.agent.config

    @property
    def sim(self):
        """The shared simulation environment."""
        return self.agent.sim

    # -- handle-based calls (the FUSE surface) -------------------------------------

    def open(self, path: str, mode: str = "r", shared: bool = False) -> int:
        """Open ``path`` with a stdio-style mode string ('r', 'r+', 'w', 'a')."""
        flags = {
            "r": OpenFlags.READ,
            "r+": OpenFlags.READ_WRITE,
            "rw": OpenFlags.READ_WRITE,
            "w": OpenFlags.READ_WRITE | OpenFlags.CREATE | OpenFlags.TRUNCATE,
            "a": OpenFlags.READ_WRITE | OpenFlags.CREATE,
        }.get(mode)
        if flags is None:
            raise ValueError(f"unsupported open mode {mode!r}")
        return self.agent.open(path, flags, shared=shared)

    def read(self, handle: int, size: int = -1, offset: int = 0) -> bytes:
        """Read from an open file."""
        return self.agent.read(handle, size, offset)

    def write(self, handle: int, data: bytes, offset: int | None = None) -> int:
        """Write to an open file (level 0 until fsync/close)."""
        return self.agent.write(handle, data, offset)

    def fsync(self, handle: int) -> None:
        """Flush an open file to the local disk (level 1)."""
        self.agent.fsync(handle)

    def truncate(self, handle: int, length: int = 0) -> None:
        """Truncate an open file."""
        self.agent.truncate(handle, length)

    def close(self, handle: int) -> None:
        """Close an open file (consistency-on-close; level 2/3 in blocking mode)."""
        self.agent.close(handle)

    # -- path-based calls -------------------------------------------------------------

    def mkdir(self, path: str, shared: bool = False) -> None:
        """Create a directory."""
        self.agent.mkdir(path, shared=shared)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self.agent.rmdir(path)

    def readdir(self, path: str) -> list[str]:
        """List the entries of a directory."""
        return self.agent.readdir(path)

    def stat(self, path: str) -> FileMetadata:
        """Metadata of a path."""
        return self.agent.stat(path)

    def exists(self, path: str) -> bool:
        """True when ``path`` exists."""
        return self.agent.exists(path)

    def unlink(self, path: str) -> None:
        """Remove a file."""
        self.agent.unlink(path)

    def rename(self, old_path: str, new_path: str) -> None:
        """Rename a file or directory."""
        self.agent.rename(old_path, new_path)

    def symlink(self, target: str, link_path: str) -> None:
        """Create a symbolic link."""
        self.agent.symlink(target, link_path)

    def readlink(self, path: str) -> str:
        """Read the target of a symbolic link."""
        return self.agent.readlink(path)

    def setfacl(self, path: str, username: str, permission: Permission) -> None:
        """Grant ``permission`` on ``path`` to another user."""
        self.agent.setfacl(path, username, permission)

    def getfacl(self, path: str) -> dict[str, Permission]:
        """Return the grants of ``path``."""
        return self.agent.getfacl(path)

    # -- whole-file helpers -------------------------------------------------------------

    def write_file(self, path: str, data: bytes, shared: bool = False) -> None:
        """Create/replace ``path`` with ``data`` (open+write+close)."""
        handle = self.open(path, "w", shared=shared)
        try:
            if data:
                self.write(handle, data)
        finally:
            self.close(handle)

    def read_file(self, path: str) -> bytes:
        """Return the whole contents of ``path`` (open+read+close)."""
        handle = self.open(path, "r")
        try:
            return self.read(handle)
        finally:
            self.close(handle)

    def append_file(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path`` (creating it if needed)."""
        handle = self.open(path, "a")
        try:
            self.write(handle, data)
        finally:
            self.close(handle)

    def copy(self, source: str, destination: str) -> None:
        """Copy a file within the file system (read whole + write whole)."""
        self.write_file(destination, self.read_file(source))

    # -- transactions ------------------------------------------------------------------

    def begin_transaction(self):
        """Start a multi-file transaction (commit/abort it explicitly)."""
        return self.agent.begin_transaction()

    def transaction(self):
        """``with fs.transaction() as txn:`` — commit on success, abort on error."""
        if self.agent.transactions is None:
            from repro.common.errors import FileSystemError

            raise FileSystemError("transactions require a coordination service")
        return self.agent.transactions.transaction()

    def run_transaction(self, body):
        """Run ``body(txn)`` and commit, retrying conflicts with bounded backoff."""
        return self.agent.run_transaction(body)

    def write_files(self, items: dict[str, bytes]) -> None:
        """Atomically replace the contents of several existing files."""
        self.agent.write_files(items)

    def rename_tree(self, old_path: str, new_path: str) -> None:
        """Atomically rename a file or a whole directory tree."""
        self.agent.rename_tree(old_path, new_path)

    # -- durability --------------------------------------------------------------------

    def durability_of(self, call: str) -> DurabilityLevel:
        """Durability level reached once ``call`` returns (Table 1).

        ``call`` is one of ``"write"``, ``"fsync"`` or ``"close"``.  In the
        non-blocking and non-sharing modes ``close`` only guarantees level 1 at
        return time; the higher level is reached when the background upload
        completes.
        """
        if call == "write":
            return DurabilityLevel.MAIN_MEMORY
        if call == "fsync":
            return DurabilityLevel.LOCAL_DISK
        if call == "close":
            if not self.config.mode.blocks_on_close:
                return DurabilityLevel.LOCAL_DISK
            if self.config.backend is BackendKind.COC:
                return DurabilityLevel.CLOUD_OF_CLOUDS
            return DurabilityLevel.CLOUD
        raise ValueError(f"unknown call {call!r}; expected write/fsync/close")

    def eventual_durability(self) -> DurabilityLevel:
        """Durability level every completed update eventually reaches."""
        if self.config.backend is BackendKind.COC:
            return DurabilityLevel.CLOUD_OF_CLOUDS
        return DurabilityLevel.CLOUD

    # -- lifecycle ----------------------------------------------------------------------

    def unmount(self) -> None:
        """Flush open state and unmount."""
        self.agent.unmount()

    def statistics(self):
        """The agent's live statistics."""
        return self.agent.statistics()

    def collect_garbage(self):
        """Run the garbage collector synchronously."""
        return self.agent.collect_garbage()
