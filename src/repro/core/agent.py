"""The SCFS Agent (§2.5): the client-side component implementing the file system.

The agent glues together the three local services (metadata, storage, locking),
the local caches, the Private Name Space, the garbage collector and the
storage backend, implementing the call flows of Figure 4:

* ``open``  — read the metadata (cache → PNS → coordination), optionally lock
  the file when opening for writing, then bring the file data into the local
  caches (from the cloud only when the locally cached copy does not match the
  anchored hash);
* ``write``/``read`` — operate purely on the main-memory copy of the open file
  (durability level 0);
* ``fsync`` — flush the open file to the local disk cache (level 1);
* ``close`` — synchronise data and metadata: push the new version to the
  cloud(s), update the metadata tuple in the coordination service (or the
  PNS), and release the write lock.  In the *blocking* mode all of this
  happens before ``close`` returns; in the *non-blocking* mode the upload, the
  metadata update and the unlock happen in the background, in that order, so
  mutual exclusion and consistency-on-close are preserved; in the
  *non-sharing* mode there is no coordination service at all and both data and
  PNS updates are pushed in the background.

The agent charges a small FUSE-crossing overhead per call plus the latency of
whatever storage layers the call actually touches, so that simulated latencies
reproduce the shape of the paper's measurements.
"""

from __future__ import annotations

import contextlib
import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import (
    FileNotFoundErrorFS,
    FileSystemError,
    InvalidHandleError,
    IsADirectoryErrorFS,
    NotADirectoryErrorFS,
    DirectoryNotEmptyError,
    ObjectNotFoundError,
    PermissionDeniedError,
)
from repro.common.types import ObjectRef, Permission, Principal
from repro.coordination.base import CoordinationService
from repro.core.backend import StorageBackend
from repro.core.cache import MetadataCache, make_disk_cache, make_memory_cache
from repro.core.config import SCFSConfig
from repro.core.gc import GarbageCollector
from repro.core.lock_service import LockService
from repro.core.metadata import FileMetadata, FileType, normalize_path, parent_path
from repro.core.metadata_service import MetadataService
from repro.core.modes import OperationMode
from repro.core.pns import PrivateNameSpace
from repro.core.storage_service import StorageService
from repro.core.users import UserRegistry
from repro.crypto.hashing import content_digest
from repro.simenv.environment import Simulation, TaskHandle
from repro.simenv.latency import FUSE_OVERHEAD
from repro.transactions.manager import Transaction, TransactionManager


class OpenFlags(enum.Flag):
    """Subset of POSIX open(2) flags relevant to SCFS."""

    READ = enum.auto()
    WRITE = enum.auto()
    CREATE = enum.auto()
    TRUNCATE = enum.auto()
    READ_WRITE = READ | WRITE


@dataclass
class OpenFile:
    """State of one open file handle (kept in the agent's open-file table)."""

    handle: int
    metadata: FileMetadata
    flags: OpenFlags
    buffer: bytearray
    dirty: bool = False
    locked: bool = False
    private: bool = False
    fsynced_digest: str = ""

    @property
    def writable(self) -> bool:
        return bool(self.flags & OpenFlags.WRITE)


@dataclass
class AgentStatistics:
    """Counters exposed for tests, reports and the benchmark harness."""

    syscalls: int = 0
    opens: int = 0
    closes: int = 0
    reads: int = 0
    writes: int = 0
    background_uploads: int = 0
    pending_uploads: int = 0
    lock_conflicts: int = 0
    consistency_retries: int = 0
    extra: dict[str, int] = field(default_factory=dict)


#: Signature of the agent's optional event sink: ``sink(kind, **fields)``.
#: The agent stamps every event with ``agent`` (principal name) and ``time``
#: (simulated seconds); the remaining fields are event-specific scalars.  The
#: scenario engine's :class:`~repro.scenarios.trace.TraceRecorder` is the main
#: consumer, but any callable works (hooks cost nothing when unset).
EventSink = Callable[..., Any]


class SCFSAgent:
    """The user-space file-system client mounted at one user's machine."""

    def __init__(
        self,
        sim: Simulation,
        config: SCFSConfig,
        principal: Principal,
        backend: StorageBackend,
        coordination: CoordinationService | None = None,
        events: EventSink | None = None,
    ):
        config.validate()
        if config.mode.uses_coordination and coordination is None:
            raise FileSystemError(
                f"the {config.mode.value} mode requires a coordination service"
            )
        self.sim = sim
        self.config = config
        self.principal = principal
        self.backend = backend
        self.coordination = coordination if config.mode.uses_coordination else None
        self.events = events
        self.stats = AgentStatistics()
        self._handles: dict[int, OpenFile] = {}
        self._next_handle = itertools.count(3)  # 0-2 "taken" by stdio, as in POSIX
        #: Files whose upload/metadata commit is still pending in the background
        #: (non-blocking and non-sharing modes); rename must redirect them.
        self._pending_commits: list[OpenFile] = []
        #: Per-file completion time of the latest scheduled background upload:
        #: uploads of the same file complete in submission order (a smaller
        #: later version must not overtake and then be clobbered by an earlier
        #: bigger one committing its metadata last).
        self._upload_fronts: dict[str, float] = {}
        #: Scheduled completion of each in-flight background commit, keyed by
        #: the open-file handle: :meth:`flush_pending` runs them early and
        #: :meth:`crash` cancels them without releasing anything.
        self._pending_tasks: dict[int, tuple[TaskHandle, Callable[[], None]]] = {}
        #: (file, user) pairs whose cloud-side ACL this agent already re-applied.
        self._acl_propagated: set[str] = set()
        self._mounted = False
        self._crashed = False

        # -- sessions and registries ----------------------------------------
        self.session = None
        if self.coordination is not None:
            self.session = self.coordination.open_session(principal, config.lock_lease)
        self.users = UserRegistry(self.coordination, self.session)
        self.users.register(principal)

        # -- local caches ------------------------------------------------------
        self.memory_cache = make_memory_cache(config.caches.memory_bytes, sim.clock)
        self.disk_cache = make_disk_cache(config.caches.disk_bytes, sim.clock)
        self.metadata_cache = MetadataCache(sim.clock, config.caches.metadata_expiration)

        # -- private name space ------------------------------------------------
        self.pns: PrivateNameSpace | None = None
        if config.private_name_spaces:
            self.pns = PrivateNameSpace(
                principal.name, backend, coordination=self.coordination, session=self.session
            )

        # -- the three local services ------------------------------------------
        self.metadata = MetadataService(
            sim, principal, self.metadata_cache,
            coordination=self.coordination, session=self.session, pns=self.pns,
        )
        self.storage = StorageService(
            sim, backend, self.memory_cache, self.disk_cache,
            read_retry_interval=config.read_retry_interval,
            read_retry_limit=config.read_retry_limit,
        )
        self.locks = LockService(sim, self.coordination, self.session)
        self.locks.on_transition = self._lock_transition
        self.gc = GarbageCollector(sim, config.gc, self.metadata, self.storage, backend)

        # -- transactional commit layer (needs the consistency anchor) ---------
        self.transactions: TransactionManager | None = (
            TransactionManager(self) if self.coordination is not None else None
        )

        self.mount()

    # ------------------------------------------------------------------ events

    def _emit(self, kind: str, **fields) -> None:
        """Send one event to the attached sink (no-op without one)."""
        if self.events is not None:
            self.events(kind, agent=self.principal.name, time=self.sim.now(), **fields)

    def _lock_transition(self, kind: str, lock_name: str) -> None:
        # repro: allow[TRC001] -- LockService forwards kind="lock"|"unlock" only; both are declared in TRACE_SCHEMA
        self._emit(kind, lock=lock_name)

    # ------------------------------------------------------------------ mount

    def mount(self) -> None:
        """Load the user's PNS and lock it against concurrent mounts (§2.7)."""
        if self._mounted:
            return
        if self.pns is not None:
            if self.coordination is not None:
                # Lock the PNS to avoid inconsistencies caused by two clients
                # logged in as the same user.
                self.locks.acquire(FileMetadata(
                    path=f"/.pns-{self.principal.name}", file_type=FileType.FILE,
                    owner=self.principal.name, file_id=self.pns.unit_id,
                ))
            try:
                self.pns.load()
            except (FileNotFoundErrorFS, ObjectNotFoundError):
                pass
        self._mounted = True

    def unmount(self) -> None:
        """Flush every open file, persist the PNS and release all locks."""
        for handle in list(self._handles):
            self.close(handle)
        if self.pns is not None and self.pns.dirty:
            self.pns.save(charge_latency=self.config.mode.blocks_on_close)
        self.locks.release_all()
        if self.coordination is not None and self.session is not None:
            self.coordination.close_session(self.session)
        self._mounted = False

    # ------------------------------------------------------------------ helpers

    def _syscall(self) -> None:
        """Charge the FUSE user-space crossing overhead of one system call."""
        self.stats.syscalls += 1
        self.sim.advance(FUSE_OVERHEAD.sample(0, self.sim.rng))

    def _handle(self, handle: int) -> OpenFile:
        try:
            return self._handles[handle]
        except KeyError:
            raise InvalidHandleError(f"unknown or closed file handle {handle}") from None

    def _require_directory(self, path: str) -> FileMetadata:
        meta = self.metadata.get(path)
        if not meta.is_directory:
            raise NotADirectoryErrorFS(f"not a directory: {path}")
        return meta

    def _check_parent(self, path: str) -> None:
        parent = parent_path(path)
        if parent != "/" and not self.metadata.exists(parent):
            raise FileNotFoundErrorFS(f"parent directory does not exist: {parent}")

    # ------------------------------------------------------------------- open

    def open(self, path: str, flags: OpenFlags = OpenFlags.READ, shared: bool = False) -> int:
        """Open (optionally creating) a file and return a handle.

        ``shared`` forces a newly created file's metadata into the coordination
        service even when PNSs are enabled (used to model externally-shared
        directories and by the Figure 10(b) sweep).
        """
        self._syscall()
        self.stats.opens += 1
        path = normalize_path(path)
        user = self.principal.name
        wants_write = bool(flags & (OpenFlags.WRITE | OpenFlags.TRUNCATE))
        began = self.sim.now()

        # The cache is fine for this first look: it only decides existence,
        # permissions and the lock name.  Writers must base the new version on
        # the *latest anchored* metadata — the cache may lag a concurrent
        # close by up to its expiration and the write lock alone does not
        # refresh it — but that authoritative read happens *after* the lock is
        # held (below), so it is not paid twice here.
        meta = self.metadata.lookup(path)
        created = False
        if meta is None or meta.deleted:
            if not flags & OpenFlags.CREATE:
                raise FileNotFoundErrorFS(f"no such file: {path}")
            self._check_parent(path)
            now = self.sim.now()
            meta = FileMetadata(
                path=path, file_type=FileType.FILE, owner=user,
                created_at=now, modified_at=now, file_id=self.sim.fresh_id("file"),
            )
            self.metadata.create(meta, shared=shared)
            created = True
        else:
            # A non-blocking commit of this path may still be in flight: its
            # version is newer than anything the anchor knows yet, and this
            # agent must read its own writes (and must not base a new version
            # on the pre-upload state, which would lose the pending update).
            pending = self._pending_commit_for(path)
            if pending is not None:
                meta = pending.metadata.copy()
        if meta.is_directory:
            raise IsADirectoryErrorFS(f"is a directory: {path}")

        needed = Permission.WRITE if wants_write else Permission.READ
        if not meta.allows(user, needed):
            raise PermissionDeniedError(f"{user} lacks {needed} permission on {path}")

        private = self.metadata.is_private(meta)
        locked = False
        if wants_write and not private and self.locks.enabled:
            # Lock shared files opened for writing; failure surfaces as an error
            # (write-write conflicts are prevented rather than merged, §2.5.1).
            try:
                # repro: allow[LCK001] -- ownership hand-off: the lock is held for the handle's lifetime and released by close()
                locked = self.locks.acquire(meta)
            except Exception:
                self.stats.lock_conflicts += 1
                raise
        try:
            if locked and not created:
                # Acquiring the lock takes one coordination round trip, during
                # which the previous holder's in-flight commit may land: the
                # (possibly cached) metadata snapshot from before the
                # acquisition can be stale, and writing on top of it would
                # fork the version history (a lost update despite mutual
                # exclusion).  The lock is the serialization point, so the
                # anchored metadata is re-validated *after* it is held.
                refreshed = self.metadata.lookup(path, use_cache=False)
                if refreshed is not None and not refreshed.deleted:
                    if refreshed.file_id != meta.file_id:
                        # The path was deleted and recreated while this open
                        # was in flight: the lock taken above guards the old
                        # incarnation's id, so move it to the current one.
                        self.locks.release(meta)
                        locked = self.locks.acquire(refreshed)
                    meta = refreshed
                pending = self._pending_commit_for(path)
                if pending is not None:
                    meta = pending.metadata.copy()

            served = False
            if flags & OpenFlags.TRUNCATE or (created and not meta.digest):
                buffer = bytearray()
                dirty = bool(flags & OpenFlags.TRUNCATE) and bool(meta.digest)
            else:
                outcome = self.storage.read_version(meta.file_id, meta.digest, meta.size)
                buffer = bytearray(outcome.data)
                dirty = False
                served = True
        except Exception:
            # The handle never materialises, so no close() could ever release
            # the lock: give it back before surfacing the error (a leak here
            # would block every other writer until this agent unmounts).
            if locked:
                self.locks.release(meta)
            raise

        handle = next(self._next_handle)
        self._handles[handle] = OpenFile(
            handle=handle, metadata=meta, flags=flags, buffer=buffer,
            dirty=dirty or (created and False), locked=locked, private=private,
        )
        # ``served`` marks opens whose buffer was loaded from the anchored
        # version (the digest below) — the events the consistency-on-close
        # invariant checker inspects.  Truncating/creating opens serve nothing.
        # ``began`` is when the metadata snapshot deciding the served version
        # was taken: the event itself is emitted only after the (possibly
        # multi-second) data fetch, and freshness must be judged against the
        # snapshot, not the fetch completion.
        self._emit("open", path=path, file_id=meta.file_id, digest=meta.digest,
                   version=meta.data_version, served=served, write=wants_write,
                   created=created, locked=locked, handle=handle, began=began)
        return handle

    def create(self, path: str, data: bytes = b"", shared: bool = False) -> int:
        """Create (or truncate) a file, optionally writing initial data."""
        handle = self.open(path, OpenFlags.READ_WRITE | OpenFlags.CREATE | OpenFlags.TRUNCATE,
                           shared=shared)
        if data:
            self.write(handle, data)
        return handle

    # -------------------------------------------------------------- read/write

    def read(self, handle: int, size: int = -1, offset: int = 0) -> bytes:
        """Read from the in-memory copy of an open file (durability level 0)."""
        self._syscall()
        self.stats.reads += 1
        of = self._handle(handle)
        if not of.flags & OpenFlags.READ:
            raise PermissionDeniedError("file not opened for reading")
        # The data was brought to the memory cache at open time; charge one
        # memory access for the copy.
        self.memory_cache.get(self._memory_key(of))
        end = len(of.buffer) if size < 0 else min(len(of.buffer), offset + size)
        data = bytes(of.buffer[offset:end])
        self._emit("read", path=of.metadata.path, handle=handle, offset=offset,
                   size=len(data))
        return data

    def write(self, handle: int, data: bytes, offset: int | None = None) -> int:
        """Write into the in-memory copy of an open file (durability level 0)."""
        self._syscall()
        self.stats.writes += 1
        of = self._handle(handle)
        if not of.writable:
            raise PermissionDeniedError("file not opened for writing")
        if offset is None:
            offset = len(of.buffer)
        if offset > len(of.buffer):
            of.buffer.extend(b"\x00" * (offset - len(of.buffer)))
        of.buffer[offset:offset + len(data)] = data
        of.dirty = True
        # Update the memory cache and the cached metadata (size/mtime), as in
        # Figure 4's write flow.
        self.memory_cache.put(self._memory_key(of), bytes(of.buffer))
        of.metadata.touch(self.sim.now(), size=len(of.buffer))
        self.metadata_cache.put(of.metadata.path, of.metadata.copy())
        self._emit("write", path=of.metadata.path, handle=handle, offset=offset,
                   size=len(data))
        return len(data)

    def truncate(self, handle: int, length: int = 0) -> None:
        """Truncate (or extend with zeros) the in-memory copy of an open file."""
        self._syscall()
        of = self._handle(handle)
        if not of.writable:
            raise PermissionDeniedError("file not opened for writing")
        if length <= len(of.buffer):
            del of.buffer[length:]
        else:
            of.buffer.extend(b"\x00" * (length - len(of.buffer)))
        of.dirty = True
        of.metadata.touch(self.sim.now(), size=len(of.buffer))
        self.metadata_cache.put(of.metadata.path, of.metadata.copy())

    def _memory_key(self, of: OpenFile) -> str:
        return f"{of.metadata.file_id}#open"

    def _pending_commit_for(self, path: str) -> OpenFile | None:
        """The newest in-flight background commit of ``path``, if any."""
        newest: OpenFile | None = None
        for pending in self._pending_commits:
            if pending.metadata.path == path:
                newest = pending
        return newest

    # ------------------------------------------------------------------- fsync

    def fsync(self, handle: int) -> None:
        """Flush an open file to the local disk (durability level 1, Table 1)."""
        self._syscall()
        of = self._handle(handle)
        if not of.dirty:
            return
        data = bytes(of.buffer)
        digest = content_digest(data)
        if digest != of.fsynced_digest:
            self.storage.flush_to_disk(of.metadata.file_id, digest, data)
            of.fsynced_digest = digest
            self._emit("fsync", path=of.metadata.path, handle=handle, digest=digest,
                       size=len(data))

    # ------------------------------------------------------------------- close

    def close(self, handle: int) -> None:
        """Close a file, synchronising data and metadata per the current mode."""
        self._syscall()
        self.stats.closes += 1
        of = self._handles.pop(handle, None)
        if of is None:
            raise InvalidHandleError(f"unknown or closed file handle {handle}")
        self.memory_cache.remove(self._memory_key(of))
        if not of.dirty or not of.writable:
            self._emit("close", path=of.metadata.path, file_id=of.metadata.file_id,
                       handle=handle, dirty=False, digest=of.metadata.digest,
                       version=of.metadata.data_version)
            if of.locked:
                self.locks.release(of.metadata)
            return

        data = bytes(of.buffer)
        digest = content_digest(data)
        meta = of.metadata
        meta.digest = digest
        meta.size = len(data)
        meta.modified_at = self.sim.now()
        meta.data_version += 1
        self._emit("close", path=meta.path, file_id=meta.file_id, handle=handle,
                   dirty=True, digest=digest, version=meta.data_version,
                   size=len(data), blocking=self.config.mode.blocks_on_close)

        # Step 1 (all modes): the updated data is copied to the local disk and
        # kept in the local caches under its new version key.
        self.storage.flush_to_disk(meta.file_id, digest, data)
        self.storage.store_in_memory(meta.file_id, digest, data)

        if self.config.mode is OperationMode.BLOCKING:
            self._commit_blocking(of, data)
        else:
            self._commit_background(of, data)
        self.gc.maybe_schedule()

    def _commit_blocking(self, of: OpenFile, data: bytes) -> None:
        meta = of.metadata
        ref = self.storage.push_to_cloud(meta.file_id, data,
                                         min_version=meta.data_version)
        self._emit("upload", path=meta.path, file_id=meta.file_id, digest=ref.digest,
                   version=meta.data_version, background=False)
        self._propagate_cloud_acls(meta)
        self._apply_committed_metadata(of, ref, charge=True)
        self._emit("commit", path=meta.path, file_id=meta.file_id, digest=meta.digest,
                   version=meta.data_version, background=False)
        if of.locked:
            self.locks.release(meta)

    def _propagate_cloud_acls(self, meta: FileMetadata) -> None:
        """Make a version written by a *grantee* readable by the owner and peers.

        New cloud objects belong to whoever uploaded them.  When that is not
        the file's owner (a user with a write grant updated the file), the
        other parties would be unable to download the new version, so the
        writer re-applies the file's ACL to the storage prefix.  Done at most
        once per (file, party) pair per agent.
        """
        if meta.owner == self.principal.name:
            return
        applied = self.stats.extra.setdefault("acl_propagations", 0)
        parties = {meta.owner: Permission.READ_WRITE}
        for user, permission in meta.grants.items():
            # "*" is a pseudo-user (world grant, covered by bucket policies on
            # the clouds) — there is no registry entry to look up for it.
            if user != self.principal.name and user != "*":
                parties[user] = permission
        for user, permission in parties.items():
            marker = f"aclprop:{meta.file_id}:{user}"
            if marker in self._acl_propagated:
                continue
            try:
                grantee = self.users.lookup(user)
            except FileNotFoundErrorFS:
                continue
            self.backend.set_acl(meta.file_id, grantee, permission)
            self._acl_propagated.add(marker)
            self.stats.extra["acl_propagations"] = applied + 1

    def _commit_background(self, of: OpenFile, data: bytes) -> None:
        """Non-blocking / non-sharing close: upload and metadata update in background."""
        meta = of.metadata
        delay = self.backend.estimate_write_latency(len(data))
        completion = self.sim.now() + delay
        front = self._upload_fronts.get(meta.file_id, 0.0)
        if completion < front:
            completion = front
        self._upload_fronts[meta.file_id] = completion
        delay = completion - self.sim.now()
        self.stats.pending_uploads += 1
        self._pending_commits.append(of)
        # The local caches already hold the new version, so the *local* user
        # immediately observes its own update; remote visibility (metadata in
        # the coordination service) only happens when the upload completes.
        self.metadata_cache.put(meta.path, meta.copy())

        def complete() -> None:
            self._pending_tasks.pop(of.handle, None)
            if self._crashed:
                return
            self.stats.pending_uploads -= 1
            self.stats.background_uploads += 1
            if of in self._pending_commits:
                self._pending_commits.remove(of)
            with self._coordination_uncharged():
                ref = self.storage.push_to_cloud_uncharged(
                    meta.file_id, data, min_version=meta.data_version)
                self._emit("upload", path=meta.path, file_id=meta.file_id,
                           digest=ref.digest, version=meta.data_version, background=True)
                with self.backend.uncharged():
                    self._propagate_cloud_acls(meta)
                self._apply_committed_metadata(of, ref, charge=False)
                self._emit("commit", path=meta.path, file_id=meta.file_id,
                           digest=meta.digest, version=meta.data_version, background=True)
                if of.locked:
                    self.locks.release(of.metadata)

        task = self.sim.schedule(delay, complete, name=f"upload:{meta.path}")
        self._pending_tasks[of.handle] = (task, complete)

    @contextlib.contextmanager
    def _coordination_uncharged(self):
        """Suspend coordination-service latency charging (background work only)."""
        rsm = getattr(self.coordination, "rsm", None)
        if rsm is None:
            yield
            return
        previous = rsm.charge_latency
        rsm.charge_latency = False
        try:
            yield
        finally:
            rsm.charge_latency = previous

    def _apply_committed_metadata(self, of: OpenFile, ref: ObjectRef, charge: bool) -> None:
        meta = of.metadata
        if not charge:
            # Background commits run after close() returned, so metadata-only
            # changes (a setfacl, an unlink, a PNS promotion) may have landed
            # in the meantime; merge them instead of clobbering the entry with
            # the snapshot taken at close time.  (Blocking commits cannot
            # race: the agent is single-threaded while close() runs.)
            latest = self.metadata.lookup(meta.path, use_cache=False)
            if latest is not None and latest.file_id != meta.file_id:
                # The path was unlinked and recreated while the upload was in
                # flight: the entry now describes a *different* file.  This
                # commit belongs to the dead incarnation — its version is in
                # the cloud(s), but it must neither overwrite the new file's
                # entry nor fail the new entry's ACL check.
                meta.deleted = True
                return
            if latest is not None:
                meta.grants = dict(latest.grants)
                meta.deleted = latest.deleted
        meta.digest = ref.digest
        meta.size = ref.size
        # Decide placement from the *current* state of the file, not from the
        # snapshot taken at open time: the file may have been promoted out of
        # the PNS (setfacl) while the upload was pending.
        private_now = self.pns is not None and (
            self.pns.contains(meta.path) or self.coordination is None
        )
        if private_now:
            self.pns.put(meta)
            self.pns.save(charge_latency=charge)
            self.metadata_cache.put(meta.path, meta.copy())
        else:
            if charge:
                self.metadata.update(meta)
            else:
                self._update_metadata_uncharged(meta)

    def _update_metadata_uncharged(self, meta: FileMetadata) -> None:
        with self._coordination_uncharged():
            self.metadata.update(meta)

    # ------------------------------------------------------------ transactions

    def flush_pending(self, path: str) -> None:
        """Run the in-flight background commits of ``path`` to completion now.

        The transactional layer calls this before touching a file: a pending
        non-blocking close would otherwise anchor its version *after* the
        transaction's CAS with an unconditional update, clobbering it.
        Completing the upload early just means "it finished by now" — the
        flush point is itself a deterministic function of the schedule, so
        replay determinism is preserved.
        """
        path = normalize_path(path)
        for pending in [of for of in list(self._pending_commits)
                        if of.metadata.path == path]:
            entry = self._pending_tasks.pop(pending.handle, None)
            if entry is None:
                continue
            task, run_now = entry
            task.cancel()
            run_now()

    def begin_transaction(self) -> Transaction:
        """Start a multi-file transaction (see :mod:`repro.transactions`)."""
        if self.transactions is None:
            raise FileSystemError("transactions require a coordination service")
        return self.transactions.begin()

    def run_transaction(self, body: Callable[[Transaction], Any]) -> Any:
        """Run ``body(txn)`` with commit-conflict retries (bounded backoff)."""
        if self.transactions is None:
            raise FileSystemError("transactions require a coordination service")
        return self.transactions.run(body)

    def write_files(self, items: dict[str, bytes]) -> None:
        """Atomically replace the contents of several existing files.

        The batched close-commit: one lock phase, one intent record, one
        commit — either every file shows its new content or none does.
        """
        ordered = sorted(items.items())

        def body(txn: Transaction) -> None:
            for path, data in ordered:
                txn.write(path, data)

        self.run_transaction(body)

    def rename_tree(self, old_path: str, new_path: str) -> None:
        """Atomically rename a file or a whole directory tree.

        With a coordination service this is a locked, intent-logged
        transaction (no concurrent close can resurrect the old path half-way
        through); without one (non-sharing mode) the plain single-agent
        rename is already atomic.
        """
        if self.transactions is None:
            self.rename(old_path, new_path)
            return
        self.transactions.rename_tree(old_path, new_path)

    # ------------------------------------------------------------------- crash

    def crash(self) -> None:
        """Simulate a hard process crash of this agent.

        All volatile state is dropped: open handles disappear, scheduled
        background commits never run, and — critically — no lock is released
        and the coordination session is *not* closed.  Locks held at crash
        time expire on their own when their lease runs out, which is exactly
        the takeover window the crash/restart scenarios exercise.
        """
        self._crashed = True
        for task, _run in self._pending_tasks.values():
            task.cancel()
        self._pending_tasks.clear()
        self._pending_commits.clear()
        self._handles.clear()
        self.stats.pending_uploads = 0
        self._mounted = False

    # -------------------------------------------------------------- namespace

    def mkdir(self, path: str, shared: bool = False) -> None:
        """Create a directory."""
        self._syscall()
        path = normalize_path(path)
        self._check_parent(path)
        parent = self.metadata.get(parent_path(path)) if parent_path(path) != "/" else None
        if parent is not None and not parent.is_directory:
            raise NotADirectoryErrorFS(f"not a directory: {parent_path(path)}")
        now = self.sim.now()
        meta = FileMetadata(path=path, file_type=FileType.DIRECTORY, owner=self.principal.name,
                            created_at=now, modified_at=now)
        self.metadata.create(meta, shared=shared)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self._syscall()
        meta = self._require_directory(path)
        if self.metadata.list_children(path):
            raise DirectoryNotEmptyError(f"directory not empty: {path}")
        if not meta.allows(self.principal.name, Permission.WRITE):
            raise PermissionDeniedError(f"cannot remove {path}")
        self.metadata.remove(path)

    def readdir(self, path: str) -> list[str]:
        """List the names of the entries of a directory."""
        self._syscall()
        self._require_directory(path)
        return [m.name for m in self.metadata.list_children(path)]

    def stat(self, path: str) -> FileMetadata:
        """Return the metadata of a path (the equivalent of ``stat(2)``)."""
        self._syscall()
        return self.metadata.get(path)

    def exists(self, path: str) -> bool:
        """True when ``path`` exists and is not deleted."""
        self._syscall()
        return self.metadata.exists(path)

    def unlink(self, path: str) -> None:
        """Remove a file (marked deleted; storage reclaimed later by the GC)."""
        self._syscall()
        meta = self.metadata.get(path)
        if meta.is_directory:
            raise IsADirectoryErrorFS(f"is a directory: {path}")
        if not meta.allows(self.principal.name, Permission.WRITE):
            raise PermissionDeniedError(f"cannot remove {path}")
        self.metadata.mark_deleted(meta)
        self._emit("unlink", path=path, file_id=meta.file_id)

    def rename(self, old_path: str, new_path: str) -> None:
        """Rename a file or directory."""
        self._syscall()
        self._check_parent(new_path)
        old_path, new_path = normalize_path(old_path), normalize_path(new_path)
        self.metadata.rename(old_path, new_path)
        # Redirect in-flight background commits so they land on the new path
        # instead of resurrecting the old one.
        old_prefix = old_path if old_path.endswith("/") else old_path + "/"
        new_prefix = new_path if new_path.endswith("/") else new_path + "/"
        for pending in self._pending_commits:
            path = pending.metadata.path
            if path == old_path:
                pending.metadata.path = new_path
            elif path.startswith(old_prefix):
                pending.metadata.path = new_prefix + path[len(old_prefix):]

    def symlink(self, target: str, link_path: str) -> None:
        """Create a symbolic link to ``target`` at ``link_path``."""
        self._syscall()
        self._check_parent(link_path)
        now = self.sim.now()
        meta = FileMetadata(path=normalize_path(link_path), file_type=FileType.SYMLINK,
                            owner=self.principal.name, created_at=now, modified_at=now,
                            link_target=target)
        self.metadata.create(meta)

    def readlink(self, path: str) -> str:
        """Return the target of a symbolic link."""
        self._syscall()
        meta = self.metadata.get(path)
        if meta.file_type is not FileType.SYMLINK:
            raise FileSystemError(f"not a symlink: {path}")
        return meta.link_target

    # -------------------------------------------------------------------- ACLs

    def setfacl(self, path: str, username: str, permission: Permission) -> None:
        """Grant ``permission`` on ``path`` to ``username`` (§2.6).

        Updates, in order: the cloud-side ACLs of the objects storing the file
        data (so the grantee's *cloud accounts* can fetch them), the metadata
        tuple's grants, and the entry ACL in the coordination service.  A
        private file becomes shared and its metadata moves out of the PNS.
        """
        self._syscall()
        meta = self.metadata.get(path)
        if meta.owner != self.principal.name:
            raise PermissionDeniedError(f"only the owner may change permissions of {path}")
        if self.coordination is None:
            raise PermissionDeniedError("sharing requires a coordination service "
                                        "(not available in the non-sharing mode)")
        grantee = self.users.lookup(username)
        was_private = self.metadata.is_private(meta)
        if meta.is_file and meta.file_id:
            self.backend.set_acl(meta.file_id, grantee, permission)
        meta.grant(username, permission)
        if was_private and meta.is_shared:
            self.metadata.promote_to_shared(meta)
        elif not meta.is_shared and not was_private and self.pns is not None:
            # The last grant was revoked: the file is private again (§2.7).
            self.metadata.demote_to_private(meta)
        else:
            self.metadata.update(meta)
        self.metadata.set_entry_grant(meta, username, permission)

    def getfacl(self, path: str) -> dict[str, Permission]:
        """Return the grants of ``path`` (owner excluded, as in POSIX ACLs)."""
        self._syscall()
        meta = self.metadata.get(path)
        if not meta.allows(self.principal.name, Permission.READ):
            raise PermissionDeniedError(f"cannot read permissions of {path}")
        return dict(meta.grants)

    # ------------------------------------------------------------------- misc

    def open_handles(self) -> int:
        """Number of files currently open."""
        return len(self._handles)

    def collect_garbage(self) -> object:
        """Run the garbage collector synchronously (returns its report)."""
        return self.gc.run()

    def statistics(self) -> AgentStatistics:
        """Live statistics of this agent."""
        return self.stats
