"""The SCFS Agent's storage service (§2.5.1).

The storage service reads and writes *whole files* as objects in the cloud and
keeps copies in two local caches:

* the main-memory cache holds the data of open files (durability level 0);
* the local disk acts as a large, long-term LRU file cache (level 1).

Its guiding principle is *always write / avoid reading*: every completed
update is pushed to the cloud (writes are cheap or free), while reads are
served locally whenever the locally cached version matches the hash anchored
in the coordination service — saving both latency and the (expensive) outbound
traffic of a download.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ObjectNotFoundError, QuorumNotReachedError
from repro.common.types import ObjectRef
from repro.core.backend import StorageBackend
from repro.core.cache import LRUByteCache
from repro.simenv.environment import Simulation


def cache_key(file_id: str, digest: str) -> str:
    """Cache key of one immutable file version."""
    return f"{file_id}#{digest}"


@dataclass
class ReadOutcome:
    """Where a read was satisfied from; used by tests and benchmark reports."""

    data: bytes
    source: str  # "memory", "disk" or "cloud"


class StorageService:
    """Whole-file data movement between memory, disk and the cloud backend."""

    def __init__(
        self,
        sim: Simulation,
        backend: StorageBackend,
        memory_cache: LRUByteCache,
        disk_cache: LRUByteCache,
        read_retry_interval: float = 0.5,
        read_retry_limit: int = 240,
    ):
        self.sim = sim
        self.backend = backend
        self.memory = memory_cache
        self.disk = disk_cache
        self.read_retry_interval = read_retry_interval
        self.read_retry_limit = read_retry_limit
        #: Counters used by the garbage-collection policy and by reports.
        self.bytes_pushed = 0
        self.cloud_reads = 0
        self.cloud_writes = 0

    # ------------------------------------------------------------------ reads

    def read_version(self, file_id: str, digest: str, expected_size: int | None = None) -> ReadOutcome:
        """Return the data of one file version, reading locally when possible.

        Resolution order: memory cache → disk cache → cloud backend.  The
        cloud path implements the retry loop of the consistency-anchor read
        (Figure 3, step r2) because the anchored hash can be visible before the
        data has propagated in an eventually consistent cloud.
        """
        if not digest:
            return ReadOutcome(data=b"", source="memory")
        key = cache_key(file_id, digest)
        data = self.memory.get(key)
        if data is not None:
            return ReadOutcome(data=data, source="memory")
        data = self.disk.get(key)
        if data is not None:
            # Promote to the memory cache: the file is being opened.
            self._cache_in_memory(key, data)
            return ReadOutcome(data=data, source="disk")
        data = self._read_from_cloud(file_id, digest)
        self.disk.put(key, data)
        self._cache_in_memory(key, data)
        return ReadOutcome(data=data, source="cloud")

    def _read_from_cloud(self, file_id: str, digest: str) -> bytes:
        attempts = 0
        while True:
            try:
                data = self.backend.read_version(file_id, digest)
                self.cloud_reads += 1
                return data
            except (ObjectNotFoundError, QuorumNotReachedError):
                # The anchored hash is ahead of the (eventually consistent)
                # storage service: the version exists but is not visible yet,
                # or not enough clouds hold its blocks yet.  Keep polling
                # (Figure 3, step r2) until it appears or the limit is hit.
                attempts += 1
                if attempts > self.read_retry_limit:
                    raise
                self.sim.advance(self.read_retry_interval)

    def cached_locally(self, file_id: str, digest: str) -> bool:
        """True when the given version is present in memory or on disk."""
        key = cache_key(file_id, digest)
        return self.memory.contains(key) or self.disk.contains(key)

    # ------------------------------------------------------------------ writes

    def _cache_in_memory(self, key: str, data: bytes) -> None:
        evicted = self.memory.put(key, data)
        # Files pushed out of the memory cache spill to the disk cache
        # (its extension, §2.5.2) instead of being lost.
        for evicted_key, evicted_data in evicted:
            if not self.disk.contains(evicted_key):
                self.disk.put(evicted_key, evicted_data)

    def store_in_memory(self, file_id: str, digest: str, data: bytes) -> None:
        """Keep an open file's (possibly dirty) data in the memory cache (level 0)."""
        self._cache_in_memory(cache_key(file_id, digest), data)

    def flush_to_disk(self, file_id: str, digest: str, data: bytes) -> None:
        """Write a file's data to the local disk cache (fsync path, level 1)."""
        self.disk.put(cache_key(file_id, digest), data)

    def push_to_cloud(self, file_id: str, data: bytes,
                      min_version: int | None = None) -> ObjectRef:
        """Synchronously upload a new version to the cloud backend (levels 2/3).

        ``min_version`` is the anchored version number of the new version
        (see :meth:`StorageBackend.write_version`).
        """
        ref = self.backend.write_version(file_id, data, min_version=min_version)
        self.cloud_writes += 1
        self.bytes_pushed += len(data)
        return ref

    def push_to_cloud_uncharged(self, file_id: str, data: bytes,
                                min_version: int | None = None) -> ObjectRef:
        """Upload without advancing the simulated clock (background uploads).

        The caller is responsible for modelling *when* the upload completes
        (typically by scheduling a deferred task at
        ``now + backend.estimate_write_latency(len(data))``).
        """
        with self.backend.uncharged():
            ref = self.backend.write_version(file_id, data, min_version=min_version)
        self.cloud_writes += 1
        self.bytes_pushed += len(data)
        return ref

    # --------------------------------------------------------------- maintenance

    def forget(self, file_id: str, digest: str) -> None:
        """Drop a version from both local caches (garbage collection support)."""
        key = cache_key(file_id, digest)
        self.memory.remove(key)
        self.disk.remove(key)
