"""The SCFS Agent's lock service (§2.5.1).

Locks avoid write-write conflicts: a file opened for writing is locked in the
coordination service, and the lock is released when the file's updates have
reached the cloud (on ``close`` in the blocking mode, after the background
upload completes in the non-blocking mode).  Opening a file for reading never
locks it — read-write conflicts are handled by the consistency anchor instead.

Lock entries are ephemeral: if a client crashes while holding a lock, the
lease expires and the file unlocks automatically.  In the non-sharing mode
there is no coordination service and therefore no locking (a single user by
definition cannot conflict with itself across agents sharing nothing).
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import LockHeldError
from repro.coordination.base import CoordinationService, Session
from repro.coordination.locks import LockManager
from repro.core.metadata import FileMetadata
from repro.simenv.environment import Simulation


class LockService:
    """Per-agent façade over the coordination service's lock recipe."""

    def __init__(
        self,
        sim: Simulation,
        coordination: CoordinationService | None,
        session: Session | None,
        retry_interval: float = 0.2,
        max_retries: int = 0,
    ):
        self.sim = sim
        self.coordination = coordination
        #: Optional observer of *actual* lock transitions, called as
        #: ``on_transition(kind, lock_name)`` with kind ``"lock"`` when the
        #: session first acquires a lock and ``"unlock"`` when the last
        #: re-entrant acquisition is released.  The scenario engine's trace
        #: recorder hooks in here.
        self.on_transition: Callable[[str, str], None] | None = None
        self._manager: LockManager | None = None
        if coordination is not None and session is not None:
            self._manager = LockManager(
                sim=sim,
                service=coordination,
                session=session,
                retry_interval=retry_interval,
                max_retries=max_retries,
            )

    @staticmethod
    def lock_name(metadata: FileMetadata) -> str:
        """Name of the lock protecting one file (keyed by its storage id)."""
        return f"filelock:{metadata.file_id or metadata.path}"

    @property
    def enabled(self) -> bool:
        """False in the non-sharing mode (no coordination service)."""
        return self._manager is not None

    def acquire(self, metadata: FileMetadata) -> bool:
        """Lock ``metadata`` for writing; raises :class:`LockHeldError` on conflict.

        Returns False (without contacting the coordination service) when
        locking is disabled, so callers need no special-casing of the
        non-sharing mode.
        """
        if self._manager is None:
            return False
        name = self.lock_name(metadata)
        if not self._manager.try_acquire(name):
            raise LockHeldError(f"{metadata.path} is locked for writing by another client")
        if self.on_transition is not None and self._manager.hold_count(name) == 1:
            self.on_transition("lock", name)
        return True

    def release(self, metadata: FileMetadata) -> None:
        """Release the write lock on ``metadata`` (no-op when not held)."""
        if self._manager is None:
            return
        name = self.lock_name(metadata)
        if self._manager.holds(name):
            released = self._manager.release(name)
            if released and self.on_transition is not None:
                self.on_transition("unlock", name)

    def release_all(self) -> None:
        """Release every lock held by this agent (unmount path)."""
        if self._manager is None:
            return
        names = list(self._manager.held)
        self._manager.release_all()
        if self.on_transition is not None:
            for name in names:
                self.on_transition("unlock", name)

    def holds(self, metadata: FileMetadata) -> bool:
        """True if this agent currently holds the write lock of ``metadata``."""
        return self._manager is not None and self._manager.holds(self.lock_name(metadata))

    def still_held(self, metadata: FileMetadata) -> bool:
        """True when the coordination service still shows this agent as holder.

        Unlike :meth:`holds` (local bookkeeping), this asks the service — a
        lease may have expired under a long-running holder.  Always True with
        locking disabled (nothing can be stolen without a lock service).
        """
        if self._manager is None:
            return True
        return self._manager.still_held(self.lock_name(metadata))
