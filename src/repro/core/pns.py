"""Private Name Spaces (§2.7).

Although file sharing is an important feature of cloud-backed storage, the
majority of files are never shared.  A Private Name Space (PNS) groups the
metadata of all *non-shared* files of one user into a single object saved in
the cloud storage, so that those files need no individual entry in the
coordination service.  Only one small *PNS tuple* per user remains there,
containing the user name and a reference (digest) of the serialized metadata
object.

This reduces both the memory footprint of the coordination service (the
1 GB → 50 MB example of §2.7) and, more importantly, the number of accesses to
it: operations on private files touch only local state, as Figure 10(b) shows.
"""

from __future__ import annotations

import json

from repro.common.errors import TupleNotFoundError
from repro.core.backend import StorageBackend
from repro.core.metadata import FileMetadata
from repro.crypto.hashing import content_digest


class PrivateNameSpace:
    """The PNS of one user: a local metadata map backed by one cloud object.

    Parameters
    ----------
    username:
        Owner of the name space.
    backend:
        Storage backend used to persist the serialized metadata object.
    coordination / session:
        When given (blocking/non-blocking modes), the PNS digest is anchored in
        a PNS tuple of the coordination service so other agents of the same
        user can find the latest copy.  In the non-sharing mode there is no
        coordination service and the digest only lives in the local mount
        state (the same simplification S3QL makes with its local metadata
        cache).
    """

    def __init__(self, username: str, backend: StorageBackend,
                 coordination=None, session=None):
        self.username = username
        self.backend = backend
        self.coordination = coordination
        self.session = session
        self.entries: dict[str, FileMetadata] = {}
        self.dirty = False
        self._last_digest: str | None = None
        self.saves = 0
        self.loads = 0

    # ------------------------------------------------------------------- keys

    @property
    def unit_id(self) -> str:
        """Identifier of the PNS object in the storage backend."""
        return f"pns-{self.username}"

    @property
    def tuple_key(self) -> str:
        """Key of the PNS tuple in the coordination service."""
        return f"pns/{self.username}"

    # -------------------------------------------------------------- serialise

    def _to_bytes(self) -> bytes:
        blob = {path: meta.to_bytes().decode() for path, meta in sorted(self.entries.items())}
        return json.dumps(blob, sort_keys=True).encode()

    def _from_bytes(self, blob: bytes) -> None:
        raw = json.loads(blob.decode())
        self.entries = {
            path: FileMetadata.from_bytes(serialized.encode()) for path, serialized in raw.items()
        }

    # ------------------------------------------------------------------- I/O

    def load(self) -> bool:
        """Fetch the PNS object referenced by the PNS tuple (mount time, §2.7).

        Returns True when an existing PNS was loaded, False when this is a
        fresh (empty) name space.
        """
        digest = self._last_digest
        if self.coordination is not None and self.session is not None:
            try:
                digest = self.coordination.get(self.tuple_key, self.session).value.decode()
            except TupleNotFoundError:
                digest = None
        if not digest:
            return False
        blob = self.backend.read_version(self.unit_id, digest)
        self._from_bytes(blob)
        self._last_digest = digest
        self.dirty = False
        self.loads += 1
        return True

    def save(self, charge_latency: bool = True) -> str | None:
        """Persist the serialized metadata object and re-anchor its digest.

        Returns the new digest, or None when nothing changed.  With
        ``charge_latency=False`` the upload does not advance the simulated
        clock (used by background flushes in the non-blocking/non-sharing
        modes).
        """
        if not self.dirty:
            return None
        blob = self._to_bytes()
        digest = content_digest(blob)
        if charge_latency:
            ref = self.backend.write_version(self.unit_id, blob)
        else:
            with self.backend.uncharged():
                ref = self.backend.write_version(self.unit_id, blob)
        self._last_digest = ref.digest
        if self.coordination is not None and self.session is not None:
            self.coordination.put(self.tuple_key, digest.encode(), self.session)
        self.dirty = False
        self.saves += 1
        return ref.digest

    # --------------------------------------------------------------- map API

    def contains(self, path: str) -> bool:
        """True if ``path`` is a private file of this user."""
        return path in self.entries

    def get(self, path: str) -> FileMetadata | None:
        """Metadata of a private file (None when not in the name space)."""
        meta = self.entries.get(path)
        return meta.copy() if meta is not None else None

    def put(self, metadata: FileMetadata) -> None:
        """Insert or update a private file's metadata."""
        self.entries[metadata.path] = metadata.copy()
        self.dirty = True

    def remove(self, path: str) -> FileMetadata | None:
        """Remove a private file's metadata (e.g. when it becomes shared)."""
        meta = self.entries.pop(path, None)
        if meta is not None:
            self.dirty = True
        return meta

    def paths(self) -> list[str]:
        """All private paths, sorted."""
        return sorted(self.entries)

    def children_of(self, directory: str) -> list[FileMetadata]:
        """Private metadata entries whose parent is ``directory``."""
        return [m.copy() for m in self.entries.values() if m.parent == directory and m.path != "/"]

    def __len__(self) -> int:
        return len(self.entries)
