"""Registry of SCFS users and their per-cloud canonical identifiers (§2.6).

Each SCFS user has separate accounts in the various cloud providers, each with
its own identifier.  SCFS associates with every client a list of *cloud
canonical identifiers*; the association is kept in a tuple of the coordination
service and loaded when the client mounts the file system.  ``setfacl`` uses
the lists of both the owner and the grantee to update the ACLs of the objects
storing the file data in the clouds.
"""

from __future__ import annotations

import json

from repro.common.errors import FileNotFoundErrorFS, TupleNotFoundError
from repro.common.types import Permission, Principal
from repro.coordination.base import CoordinationService, Session

_USER_PREFIX = "user/"


class UserRegistry:
    """Read/write access to the per-user canonical-identifier tuples."""

    def __init__(self, coordination: CoordinationService | None, session: Session | None):
        self.coordination = coordination
        self.session = session
        self._local: dict[str, Principal] = {}

    def register(self, principal: Principal) -> None:
        """Store (or refresh) the canonical identifiers of ``principal``."""
        self._local[principal.name] = principal
        if self.coordination is None or self.session is None:
            return
        payload = json.dumps(
            {"name": principal.name, "canonical_ids": list(principal.canonical_ids)},
            sort_keys=True,
        ).encode()
        key = _USER_PREFIX + principal.name
        self.coordination.put(key, payload, self.session)
        # The canonical-id mapping must be readable by every other client so
        # that they can grant this user access to their files (§2.6).
        self.coordination.set_entry_acl(key, "*", Permission.READ, self.session)

    def lookup(self, username: str) -> Principal:
        """Return the principal (with canonical ids) registered for ``username``.

        Raises :class:`FileNotFoundErrorFS` when the user is unknown — sharing
        with an unregistered user is an error the application should see.
        """
        if username in self._local:
            return self._local[username]
        if self.coordination is None or self.session is None:
            raise FileNotFoundErrorFS(f"unknown user {username!r} (no coordination service)")
        try:
            entry = self.coordination.get(_USER_PREFIX + username, self.session)
        except TupleNotFoundError:
            raise FileNotFoundErrorFS(f"unknown user {username!r}") from None
        raw = json.loads(entry.value.decode())
        principal = Principal(
            name=raw["name"],
            canonical_ids=tuple((p, c) for p, c in raw.get("canonical_ids", [])),
        )
        self._local[username] = principal
        return principal
