"""Deployment helpers: assemble clouds + coordination + agents for one variant.

A :class:`SCFSDeployment` owns the simulated infrastructure shared by every
client of one experiment — the storage cloud(s), the coordination service and
the simulation environment — and hands out mounted :class:`SCFSFileSystem`
instances for individual users.  Benchmarks and examples use it to build any
of the six Table 2 variants in a couple of lines::

    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=1)
    alice = deployment.create_agent("alice")
    bob = deployment.create_agent("bob")
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import Principal
from repro.clouds.accounting import UsageBreakdown
from repro.clouds.dispatch import InstantCoalescer
from repro.clouds.eventual import EventuallyConsistentStore
from repro.clouds.providers import COC_STORAGE_PROVIDERS, make_cloud_of_clouds, make_provider
from repro.coordination.adapters import make_coordination_service
from repro.coordination.base import CoordinationService
from repro.core.agent import SCFSAgent
from repro.core.backend import CloudOfCloudsBackend, SingleCloudBackend, StorageBackend
from repro.core.config import SCFSConfig
from repro.core.filesystem import SCFSFileSystem
from repro.core.modes import BackendKind
from repro.simenv.environment import Simulation
from repro.simenv.latency import LatencyModel


@dataclass
class DeploymentCosts:
    """Aggregated provider-side usage and dollar costs of a deployment."""

    per_provider: dict[str, float] = field(default_factory=dict)
    request_cost: float = 0.0
    traffic_cost: float = 0.0
    storage_cost: float = 0.0
    usage: UsageBreakdown = field(default_factory=UsageBreakdown)

    @property
    def total(self) -> float:
        """Total dollars across all providers."""
        return self.request_cost + self.traffic_cost + self.storage_cost


class SCFSDeployment:
    """The shared infrastructure of one SCFS experiment."""

    def __init__(self, config: SCFSConfig, sim: Simulation | None = None, seed: int = 0):
        config.validate()
        self.config = config
        self.sim = sim or Simulation(seed=seed)
        self.clouds: list[EventuallyConsistentStore] = self._build_clouds()
        self.coordination: CoordinationService | None = self._build_coordination()
        self.filesystems: dict[str, SCFSFileSystem] = {}
        # One coalescer for the whole deployment (when enabled): same-instant
        # metadata read quorums coalesce across every agent's client.
        self.coalescer = (
            InstantCoalescer(self.sim)
            if config.dispatch.coalesce_instant and config.backend is BackendKind.COC
            else None
        )

    # ------------------------------------------------------------- constructors

    @classmethod
    def for_variant(cls, variant_name: str, sim: Simulation | None = None, seed: int = 0,
                    **config_overrides) -> "SCFSDeployment":
        """Build a deployment for one of the Table 2 variants by name."""
        config = SCFSConfig.for_variant(variant_name, **config_overrides)
        return cls(config, sim=sim, seed=seed)

    def _build_clouds(self) -> list[EventuallyConsistentStore]:
        if self.config.backend is BackendKind.AWS:
            # A single S3-like store accessed sequentially: it charges its own latency.
            return [make_provider(self.sim, "amazon-s3", charge_latency=True)]
        # Cloud-of-clouds: DepSky accesses the four providers in parallel and
        # charges quorum latencies itself.
        return make_cloud_of_clouds(self.sim, COC_STORAGE_PROVIDERS, charge_latency=False)

    def _build_coordination(self) -> CoordinationService | None:
        if not self.config.mode.uses_coordination:
            return None
        if self.config.backend is BackendKind.AWS:
            # One DepSpace instance in a single EC2 VM (no replication, f=0);
            # the access latency is dominated by the WAN round trip (§4.2).
            factory = lambda: make_coordination_service(  # noqa: E731
                self.sim, self.config.coordination_kind, f=0,
                latency=LatencyModel(base=0.080, jitter=0.2),
            )
        else:
            # Replicated DepSpace across four computing clouds (f=1): the client
            # waits for a Byzantine quorum, slightly above the single-VM latency.
            factory = lambda: make_coordination_service(  # noqa: E731
                self.sim, self.config.coordination_kind, f=self.config.fault_tolerance,
                latency=LatencyModel(base=0.095, jitter=0.2),
            )
        if self.config.coordination_partitions == 1:
            return factory()
        # The §5 scalability extension: partition the namespace over several
        # independent coordination services.
        from repro.coordination.partitioned import PartitionedCoordination

        return PartitionedCoordination(
            [factory() for _ in range(self.config.coordination_partitions)]
        )

    # ------------------------------------------------------------------- agents

    def _principal(self, username: str) -> Principal:
        canonical = tuple((cloud.name, f"{username}@{cloud.name}") for cloud in self.clouds)
        return Principal(name=username, canonical_ids=canonical)

    def _backend_for(self, principal: Principal) -> StorageBackend:
        # The config's dispatch block travels with every backend, so variants
        # enable timeouts/hedging/suspect-lists from configuration alone.
        if self.config.backend is BackendKind.AWS:
            return SingleCloudBackend(self.sim, self.clouds[0], principal,
                                      dispatch=self.config.dispatch)
        return CloudOfCloudsBackend(
            self.sim, self.clouds, principal,
            f=self.config.fault_tolerance, encrypt=self.config.encrypt_data,
            dispatch=self.config.dispatch, coalescer=self.coalescer,
            quorum=self.config.quorum,
        )

    def create_agent(self, username: str, config: SCFSConfig | None = None,
                     events=None) -> SCFSFileSystem:
        """Mount the file system for ``username`` and return its façade.

        ``events`` is an optional :data:`~repro.core.agent.EventSink` receiving
        the agent's operation events (the scenario engine's trace recorder).
        """
        principal = self._principal(username)
        agent = SCFSAgent(
            sim=self.sim,
            config=config or self.config,
            principal=principal,
            backend=self._backend_for(principal),
            coordination=self.coordination,
            events=events,
        )
        filesystem = SCFSFileSystem(agent)
        self.filesystems[username] = filesystem
        return filesystem

    def agent_for(self, username: str) -> SCFSFileSystem:
        """Return an already-created mount for ``username``."""
        return self.filesystems[username]

    # ----------------------------------------------------------------- lifecycle

    def drain(self, extra: float = 0.0) -> None:
        """Run every pending background task (uploads, GC) to completion."""
        self.sim.drain(extra)

    def unmount_all(self) -> None:
        """Unmount every file system created by this deployment."""
        for filesystem in self.filesystems.values():
            filesystem.unmount()

    # -------------------------------------------------------------------- costs

    def costs(self) -> DeploymentCosts:
        """Aggregate the provider-side usage/dollars accumulated so far."""
        result = DeploymentCosts()
        for cloud in self.clouds:
            tracker = cloud.costs
            result.per_provider[cloud.name] = tracker.total_cost()
            result.request_cost += tracker.request_cost()
            result.traffic_cost += tracker.traffic_cost()
            result.storage_cost += tracker.storage_cost()
            result.usage = result.usage.merge(tracker.usage)
        return result

    def reset_costs(self) -> None:
        """Zero every provider's usage counters (between benchmark phases)."""
        for cloud in self.clouds:
            cloud.costs.reset()

    def stored_bytes(self) -> int:
        """Total bytes currently stored across all providers."""
        return sum(cloud.stored_bytes() for cloud in self.clouds)

    def coordination_entries(self) -> int:
        """Number of entries in the coordination service (0 without one)."""
        return self.coordination.entry_count() if self.coordination is not None else 0


def build_variant_matrix(sim: Simulation | None = None, seed: int = 0,
                         **config_overrides) -> dict[str, SCFSDeployment]:
    """Instantiate all six Table 2 variants (used by the micro-benchmark table)."""
    from repro.core.modes import VARIANTS

    deployments = {}
    for name in VARIANTS:
        deployments[name] = SCFSDeployment.for_variant(
            name, sim=sim, seed=seed, **config_overrides
        )
    return deployments
