"""Authenticated symmetric encryption of file data.

Before a file leaves the client, DepSky encrypts it with a fresh random key
(Figure 6, steps 1–2).  The execution environment offers no AES
implementation, so we build an authenticated stream cipher from primitives in
the standard library:

* a keystream derived from SHA-256 in counter mode (key ‖ nonce ‖ counter);
* an HMAC-SHA256 tag over nonce ‖ ciphertext (encrypt-then-MAC).

This is sufficient for the reproduction's goals (confidentiality from any
single cloud, integrity verification on read) while remaining dependency-free
and deterministic under a seeded RNG.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

from repro.crypto.hashing import hmac_digest, verify_hmac

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


def generate_key(rng: random.Random | None = None) -> bytes:
    """Generate a fresh :data:`KEY_SIZE`-byte symmetric key.

    When ``rng`` is provided (e.g. the simulation RNG) the key is derived from
    it deterministically, which keeps whole-simulation runs reproducible;
    otherwise ``random.SystemRandom`` is used.
    """
    rng = rng or random.SystemRandom()
    return bytes(rng.randrange(256) for _ in range(KEY_SIZE))


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Derive a ``length``-byte keystream from key ‖ nonce with SHAKE-256."""
    return hashlib.shake_256(key + nonce).digest(length)


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings (always vectorised).

    ``np.frombuffer`` views the inputs without copying, so even tiny payloads
    are cheaper through numpy than a Python byte loop; the cipher sits on the
    same per-write hot path as the erasure coder (Figure 6, step 2).
    """
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(stream, dtype=np.uint8)
    return (a ^ b).tobytes()


class SymmetricCipher:
    """Authenticated encryption with a single symmetric key."""

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise ValueError(f"key must be {KEY_SIZE} bytes, got {len(key)}")
        self._key = key
        # Separate keys for encryption and authentication, derived from the master.
        self._enc_key = hashlib.sha256(b"enc" + key).digest()
        self._mac_key = hashlib.sha256(b"mac" + key).digest()

    def encrypt(self, plaintext: bytes, rng: random.Random | None = None) -> bytes:
        """Encrypt and authenticate ``plaintext``; returns nonce ‖ ciphertext ‖ tag."""
        rng = rng or random.SystemRandom()
        nonce = bytes(rng.randrange(256) for _ in range(NONCE_SIZE))
        stream = _keystream(self._enc_key, nonce, len(plaintext))
        ciphertext = _xor(plaintext, stream)
        tag = hmac_digest(self._mac_key, nonce + ciphertext)
        return nonce + ciphertext + tag

    def decrypt(self, blob: bytes) -> bytes:
        """Verify and decrypt a blob produced by :meth:`encrypt`.

        Raises ``ValueError`` when the authentication tag does not match
        (tampered or truncated data).
        """
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise ValueError("ciphertext too short")
        nonce = blob[:NONCE_SIZE]
        ciphertext = blob[NONCE_SIZE:-TAG_SIZE]
        tag = blob[-TAG_SIZE:]
        if not verify_hmac(self._mac_key, nonce + ciphertext, tag):
            raise ValueError("authentication tag mismatch (data tampered or wrong key)")
        stream = _keystream(self._enc_key, nonce, len(ciphertext))
        return _xor(ciphertext, stream)

    def overhead(self) -> int:
        """Number of bytes the ciphertext adds over the plaintext."""
        return NONCE_SIZE + TAG_SIZE
