"""Authenticated symmetric encryption of file data.

Before a file leaves the client, DepSky encrypts it with a fresh random key
(Figure 6, steps 1–2).  The execution environment offers no AES
implementation, so we build an authenticated stream cipher from primitives in
the standard library:

* a keystream derived from SHAKE-256 over key ‖ nonce;
* an HMAC-SHA256 tag over nonce ‖ ciphertext (encrypt-then-MAC).

This is sufficient for the reproduction's goals (confidentiality from any
single cloud, integrity verification on read) while remaining dependency-free
and deterministic under a seeded RNG.

The write hot path uses :meth:`SymmetricCipher.encrypt_into`, which XORs the
keystream into a caller-owned ``uint8`` array (e.g. the erasure coder's
framed payload region) instead of allocating ``bytes`` for the ciphertext,
the concatenated MAC input, and the final blob — the MAC runs incrementally
over ``memoryview``-style buffer slices, so a 16 MiB encrypt performs no
full-payload copy beyond the XOR itself.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
import random

import numpy as np

from repro.crypto.hashing import verify_hmac

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


def _random_bytes(rng: random.Random, count: int) -> bytes:
    """``count`` bytes from ``rng``, byte-stream-compatible with the historic
    per-byte ``rng.randrange(256)`` loop at roughly half the cost.

    CPython's ``randrange(256)`` draws ``getrandbits(9)`` (9 = bit length of
    256) and rejects values >= 256, so issuing the same 9-bit draws directly
    consumes the identical underlying random stream and leaves the RNG in the
    identical state — seeded simulation runs (and their pinned replay
    fingerprints) reproduce the exact same keys and nonces.  A single
    ``getrandbits(8 * count)`` call would be faster still but consumes the
    stream differently, which would silently re-key every pinned scenario.
    """
    out = bytearray()
    getrandbits = rng.getrandbits
    append = out.append
    while len(out) < count:
        value = getrandbits(9)
        if value < 256:
            append(value)
    return bytes(out)


def generate_key(rng: random.Random | None = None) -> bytes:
    """Generate a fresh :data:`KEY_SIZE`-byte symmetric key.

    When ``rng`` is provided (e.g. the simulation RNG) the key is derived
    from it deterministically — via :func:`_random_bytes`, which preserves
    the historic ``randrange``-per-byte stream consumption — keeping
    whole-simulation runs reproducible; otherwise the key comes straight
    from ``os.urandom`` in one call.
    """
    if rng is None:
        # repro: allow[DET002] -- non-sim fallback: under a Simulation the caller always threads a forked rng
        return os.urandom(KEY_SIZE)
    return _random_bytes(rng, KEY_SIZE)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Derive a ``length``-byte keystream from key ‖ nonce with SHAKE-256."""
    return hashlib.shake_256(key + nonce).digest(length)


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings (always vectorised).

    ``np.frombuffer`` views the inputs without copying, so even tiny payloads
    are cheaper through numpy than a Python byte loop; the cipher sits on the
    same per-write hot path as the erasure coder (Figure 6, step 2).
    """
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(stream, dtype=np.uint8)
    return (a ^ b).tobytes()


class SymmetricCipher:
    """Authenticated encryption with a single symmetric key."""

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise ValueError(f"key must be {KEY_SIZE} bytes, got {len(key)}")
        self._key = key
        # Separate keys for encryption and authentication, derived from the master.
        self._enc_key = hashlib.sha256(b"enc" + key).digest()
        self._mac_key = hashlib.sha256(b"mac" + key).digest()

    def encrypt_into(self, plaintext: bytes, out: np.ndarray,
                     rng: random.Random | None = None) -> np.ndarray:
        """Encrypt ``plaintext`` into the caller-owned buffer ``out``.

        ``out`` must be a contiguous 1-D ``uint8`` view of exactly
        ``len(plaintext) + overhead()`` bytes; on return it holds
        nonce ‖ ciphertext ‖ tag — byte-identical to :meth:`encrypt` given
        the same RNG state.  The keystream XOR lands directly in ``out`` and
        the MAC is computed incrementally over the buffer, so no
        ciphertext-sized temporaries are allocated.
        """
        length = len(plaintext)
        if (out.dtype != np.uint8 or out.ndim != 1
                or out.shape[0] != length + NONCE_SIZE + TAG_SIZE
                or not out.flags.c_contiguous):
            raise ValueError(
                f"out must be a contiguous 1-D uint8 view of "
                f"{length + NONCE_SIZE + TAG_SIZE} bytes")
        nonce = _random_bytes(rng, NONCE_SIZE) if rng is not None \
            else os.urandom(NONCE_SIZE)  # repro: allow[DET002] -- non-sim fallback: simulated runs always pass rng
        out[:NONCE_SIZE] = np.frombuffer(nonce, dtype=np.uint8)
        ciphertext = out[NONCE_SIZE:NONCE_SIZE + length]
        stream = _keystream(self._enc_key, nonce, length)
        np.bitwise_xor(np.frombuffer(plaintext, dtype=np.uint8),
                       np.frombuffer(stream, dtype=np.uint8), out=ciphertext)
        mac = _hmac.new(self._mac_key, nonce, hashlib.sha256)
        mac.update(ciphertext)  # buffer-protocol view — no concat copy
        out[NONCE_SIZE + length:] = np.frombuffer(mac.digest(), dtype=np.uint8)
        return out

    def encrypt(self, plaintext: bytes, rng: random.Random | None = None) -> bytes:
        """Encrypt and authenticate ``plaintext``; returns nonce ‖ ciphertext ‖ tag."""
        out = np.empty(len(plaintext) + NONCE_SIZE + TAG_SIZE, dtype=np.uint8)
        self.encrypt_into(plaintext, out, rng)
        return out.tobytes()

    def decrypt(self, blob: bytes) -> bytes:
        """Verify and decrypt a blob produced by :meth:`encrypt`.

        Raises ``ValueError`` when the authentication tag does not match
        (tampered or truncated data).
        """
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise ValueError("ciphertext too short")
        view = memoryview(blob)
        nonce = blob[:NONCE_SIZE]
        ciphertext = view[NONCE_SIZE:-TAG_SIZE]
        tag = blob[-TAG_SIZE:]
        if not verify_hmac(self._mac_key, view[:-TAG_SIZE], tag):
            raise ValueError("authentication tag mismatch (data tampered or wrong key)")
        stream = _keystream(self._enc_key, nonce, len(ciphertext))
        return _xor(ciphertext, stream)

    def overhead(self) -> int:
        """Number of bytes the ciphertext adds over the plaintext."""
        return NONCE_SIZE + TAG_SIZE
