"""Systematic Reed–Solomon erasure coding over GF(2^8).

DepSky (Figure 6, step 3) erasure-codes the encrypted file so that each of the
``n = 3f+1`` clouds stores a block of roughly ``1/k`` of the file size, with
``k = f+1`` blocks sufficient to rebuild it.  For the default ``f = 1`` this
yields the ~50 % storage overhead the paper reports in Figure 11(c): two
clouds store half the file each and a third stores one extra coded block (the
fourth cloud is not used for data when *preferred quorums* are enabled).

The implementation uses a systematic encoding matrix: the first ``k`` output
blocks are the plain data blocks and the remaining ``n - k`` are parity.
Decoding from any ``k`` available blocks inverts the corresponding rows.

Fast paths
----------
* **Systematic encode** — the first ``k`` coded blocks are literal slices of
  the framed payload, so encoding multiplies only the ``n - k`` parity rows
  (roughly halving the work at the paper's ``(4, 2)``).
* **Streaming zero-copy encode** — :meth:`ErasureCoder.frame_into` lays the
  frame header out in a caller-owned ``(n, block_len)`` buffer and exposes
  the payload region as a writable view (so the cipher can place ciphertext
  directly where the systematic blocks live, with no intermediate copy), and
  :meth:`ErasureCoder.encode_stripes` walks that buffer in column stripes,
  computing the parity rows of each stripe in place via ``gf256.matmul``'s
  ``out=`` path.  Stripes are column ranges of the ``(k, block_len)`` data
  matrix, so stripewise parity is byte-identical to whole-block parity while
  each stripe's bytes are still cache-hot for the consumer (the DepSky write
  pipeline feeds them straight into incremental digests).
  :meth:`ErasureCoder.stream` and :meth:`ErasureCoder.encode_into` wrap this
  for plain ``bytes`` payloads; :meth:`ErasureCoder.encode` keeps the
  list-of-:class:`CodedBlock` API on top.
* **Systematic decode** — when the ``k`` chosen blocks are exactly the
  systematic ones, decoding is a pure byte concatenation with no field
  arithmetic at all.  DepSky's preferred-quorum reads hit this path whenever
  the first ``k`` clouds answer correctly.
* **Decode-matrix cache** — inverted submatrices are cached per
  surviving-block index tuple, so repeated reads under the same failure
  pattern skip the Gauss–Jordan inversion entirely.
* **Chunked encode/decode** — the underlying ``gf256.matmul`` picks its
  kernel per stripe (the nibble-split pair-table path for the wide stripes
  used here) and bounds its own temporaries, so multi-hundred-MB payloads
  never materialise a proportional gather tensor.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SingularMatrixError
from repro.crypto import gf256

#: Header prepended to the padded payload so that decode can recover the
#: original length:  magic (2 bytes) + original length (8 bytes).
_HEADER = struct.Struct(">HQ")
_MAGIC = 0x5343  # "SC"

#: Default column-stripe width (bytes per block row) for the streaming
#: encode.  Wide enough that every stripe takes gf256's nibble-split kernel
#: (>= its 32 KiB threshold) and the per-stripe Python overhead vanishes,
#: small enough that one stripe across all ``n`` rows stays cache-resident
#: for the digest/assembly consumers downstream.
DEFAULT_STRIPE_BYTES = 1 << 17


@dataclass(frozen=True)
class CodedBlock:
    """One erasure-coded block: its row ``index`` in the code and the payload."""

    index: int
    payload: bytes


@dataclass(frozen=True)
class StripeView:
    """One encoded column stripe: ``blocks[:, start:stop]`` of the buffer.

    ``blocks`` is an ``(n, stop - start)`` uint8 view — rows ``0..k-1`` are
    the framed payload columns, rows ``k..n-1`` the freshly computed parity.
    Views alias the encode buffer; consume them before the next stripe if the
    buffer is reused.
    """

    start: int
    stop: int
    blocks: np.ndarray


class ErasureCoder:
    """Systematic ``(n, k)`` Reed–Solomon coder.

    Parameters
    ----------
    n:
        Total number of blocks produced (one per cloud).
    k:
        Number of blocks required to reconstruct the data.
    """

    def __init__(self, n: int, k: int):
        if not 1 <= k <= n:
            raise ValueError(f"invalid erasure-code parameters n={n}, k={k}")
        if n > 255:
            raise ValueError("GF(256) Reed-Solomon supports at most 255 blocks")
        self.n = n
        self.k = k
        self._matrix = self._systematic_matrix(n, k)
        #: Parity rows only — the systematic rows are the identity and are
        #: served as plain slices by :meth:`encode`.
        self._parity_matrix = self._matrix[k:]
        #: Inverted decode submatrices keyed by the tuple of surviving block
        #: indices (at most C(n, k) entries for DepSky's tiny n).
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    @staticmethod
    def _systematic_matrix(n: int, k: int) -> np.ndarray:
        vander = gf256.vandermonde(n, k)
        top_inv = gf256.invert_matrix(vander[:k, :k])
        return gf256.matmul_matrix(vander, top_inv)

    # ------------------------------------------------------------------ API

    def encode(self, data: bytes) -> list[CodedBlock]:
        """Split ``data`` into ``n`` coded blocks, any ``k`` of which rebuild it."""
        buffer = self.encode_into(data)
        return [CodedBlock(index=i, payload=buffer[i].tobytes())
                for i in range(self.n)]

    def frame_into(self, data_len: int,
                   out: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Lay out the encode buffer for a ``data_len``-byte payload.

        Returns ``(buffer, payload_view)``: ``buffer`` is an
        ``(n, block_len)`` uint8 array (``out`` when given, freshly
        zero-allocated otherwise) whose first ``k`` rows will hold the framed
        payload, and ``payload_view`` is the flat writable view of the
        ``data_len`` payload bytes inside it.  The frame header is written
        and the padding tail zeroed; the caller fills ``payload_view`` (e.g.
        the cipher encrypts straight into it) and then runs
        :meth:`encode_stripes` over the buffer.
        """
        block_len = self.block_size(data_len)
        if out is None:
            buffer = np.zeros((self.n, block_len), dtype=np.uint8)
        else:
            if (out.shape != (self.n, block_len) or out.dtype != np.uint8
                    or not out.flags.c_contiguous):
                raise ValueError(
                    f"out must be a C-contiguous uint8 array of shape "
                    f"{(self.n, block_len)}")
            buffer = out
        flat = buffer[:self.k].reshape(-1)
        header = np.frombuffer(_HEADER.pack(_MAGIC, data_len), dtype=np.uint8)
        flat[:_HEADER.size] = header
        if out is not None and _HEADER.size + data_len < flat.shape[0]:
            flat[_HEADER.size + data_len:] = 0  # zero the padding tail
        payload_view = flat[_HEADER.size:_HEADER.size + data_len]
        return buffer, payload_view

    def encode_stripes(self, buffer: np.ndarray,
                       stripe_bytes: int = DEFAULT_STRIPE_BYTES,
                       ) -> Iterator[StripeView]:
        """Encode the parity rows of a framed ``(n, block_len)`` buffer in place.

        Walks the buffer in column stripes of ``stripe_bytes`` per row,
        multiplying the parity matrix into rows ``k..n-1`` of each stripe via
        ``gf256.matmul(..., out=...)`` and yielding the finished
        :class:`StripeView` — data and parity columns together — so the
        caller can digest or ship each stripe while it is still cache-hot and
        while later stripes have not been computed yet.  Stripes are column
        ranges of the data matrix, so the resulting bytes are identical to a
        single whole-buffer encode.
        """
        if buffer.shape[0] != self.n or buffer.dtype != np.uint8:
            raise ValueError(f"buffer must be uint8 with {self.n} rows")
        if stripe_bytes <= 0:
            raise ValueError("stripe_bytes must be positive")
        block_len = buffer.shape[1]
        data_rows = buffer[:self.k]
        parity_rows = buffer[self.k:] if self.n > self.k else None
        for start in range(0, block_len, stripe_bytes):
            stop = min(start + stripe_bytes, block_len)
            if parity_rows is not None:
                gf256.matmul(self._parity_matrix, data_rows[:, start:stop],
                             out=parity_rows[:, start:stop])
            yield StripeView(start=start, stop=stop,
                             blocks=buffer[:, start:stop])
        if block_len == 0:
            yield StripeView(start=0, stop=0, blocks=buffer)

    def stream(self, data: bytes,
               out: np.ndarray | None = None,
               stripe_bytes: int = DEFAULT_STRIPE_BYTES) -> Iterator[StripeView]:
        """Stream-encode ``data``: yield each column stripe as it is coded.

        Frames ``data`` into ``out`` (or a fresh buffer), then drives
        :meth:`encode_stripes`.  Equivalent to :meth:`encode_into` but hands
        the caller every stripe while later stripes are still pending.
        """
        buffer, payload_view = self.frame_into(len(data), out)
        payload_view[:] = np.frombuffer(data, dtype=np.uint8)
        yield from self.encode_stripes(buffer, stripe_bytes)

    def encode_into(self, data: bytes,
                    out: np.ndarray | None = None,
                    stripe_bytes: int = DEFAULT_STRIPE_BYTES) -> np.ndarray:
        """Encode ``data`` into an ``(n, block_len)`` buffer and return it.

        Row ``i`` of the result is coded block ``i`` (the first ``k`` rows
        are the framed systematic payload, the rest parity) — the zero-copy
        equivalent of :meth:`encode` for callers that can consume array rows
        instead of ``bytes``.
        """
        buffer, payload_view = self.frame_into(len(data), out)
        payload_view[:] = np.frombuffer(data, dtype=np.uint8)
        for _ in self.encode_stripes(buffer, stripe_bytes):
            pass
        return buffer

    def decode(self, blocks: list[CodedBlock]) -> bytes:
        """Rebuild the original data from any ``k`` distinct coded blocks."""
        unique: dict[int, CodedBlock] = {}
        for block in blocks:
            if not 0 <= block.index < self.n:
                raise ValueError(f"block index {block.index} out of range for n={self.n}")
            unique.setdefault(block.index, block)
        if len(unique) < self.k:
            raise ValueError(f"need at least {self.k} distinct blocks, got {len(unique)}")
        # Sorting prefers systematic (low-index) blocks, maximising fast-path hits.
        chosen = sorted(unique.values(), key=lambda b: b.index)[: self.k]
        lengths = {len(b.payload) for b in chosen}
        if len(lengths) != 1:
            raise ValueError("coded blocks have inconsistent lengths")
        indices = tuple(b.index for b in chosen)
        if indices == tuple(range(self.k)):
            # Systematic fast path: the data blocks survived, no arithmetic.
            framed = b"".join(b.payload for b in chosen)
            magic, length = _HEADER.unpack_from(framed)
            payload = framed[_HEADER.size:_HEADER.size + length]
        else:
            inverse = self._decode_matrix(indices)
            stacked = np.stack(
                [np.frombuffer(b.payload, dtype=np.uint8) for b in chosen]
            )
            data_blocks = gf256.matmul(inverse, stacked)
            flat = data_blocks.reshape(-1)
            # Parse the header straight off the array and slice the payload
            # *before* materialising bytes — only the payload is copied, not
            # the padded frame.
            magic, length = _HEADER.unpack_from(flat)
            payload = flat[_HEADER.size:_HEADER.size + length].tobytes()
        if magic != _MAGIC:
            raise ValueError("decoded data has an invalid header (wrong blocks?)")
        if len(payload) != length:
            raise ValueError("decoded data is truncated")
        return payload

    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        """Inverted decode submatrix for the surviving ``indices`` (cached)."""
        inverse = self._decode_cache.get(indices)
        if inverse is None:
            submatrix = self._matrix[list(indices)]
            try:
                inverse = gf256.invert_matrix(submatrix)
            except SingularMatrixError as exc:
                raise SingularMatrixError(
                    f"cannot decode from blocks {list(indices)}: insufficient "
                    f"independent blocks (need {self.k} linearly independent rows)"
                ) from exc
            self._decode_cache[indices] = inverse
        return inverse

    def block_size(self, data_len: int) -> int:
        """Size in bytes of each coded block for a payload of ``data_len`` bytes."""
        framed = _HEADER.size + data_len
        return (framed + self.k - 1) // self.k

    def storage_overhead(self) -> float:
        """Ratio of total stored bytes to original bytes (``n / k``)."""
        return self.n / self.k
