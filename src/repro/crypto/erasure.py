"""Systematic Reed–Solomon erasure coding over GF(2^8).

DepSky (Figure 6, step 3) erasure-codes the encrypted file so that each of the
``n = 3f+1`` clouds stores a block of roughly ``1/k`` of the file size, with
``k = f+1`` blocks sufficient to rebuild it.  For the default ``f = 1`` this
yields the ~50 % storage overhead the paper reports in Figure 11(c): two
clouds store half the file each and a third stores one extra coded block (the
fourth cloud is not used for data when *preferred quorums* are enabled).

The implementation uses a systematic encoding matrix: the first ``k`` output
blocks are the plain data blocks and the remaining ``n - k`` are parity.
Decoding from any ``k`` available blocks inverts the corresponding rows.

Fast paths
----------
* **Systematic encode** — the first ``k`` coded blocks are literal slices of
  the framed payload, so :meth:`ErasureCoder.encode` multiplies only the
  ``n - k`` parity rows (roughly halving the work at the paper's ``(4, 2)``).
* **Systematic decode** — when the ``k`` chosen blocks are exactly the
  systematic ones, decoding is a pure byte concatenation with no field
  arithmetic at all.  DepSky's preferred-quorum reads hit this path whenever
  the first ``k`` clouds answer correctly.
* **Decode-matrix cache** — inverted submatrices are cached per
  surviving-block index tuple, so repeated reads under the same failure
  pattern skip the Gauss–Jordan inversion entirely.
* **Chunked encode/decode** — the underlying ``gf256.matmul`` slices long
  blocks internally, so multi-hundred-MB payloads never materialise a
  proportional temporary gather tensor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SingularMatrixError
from repro.crypto import gf256

#: Header prepended to the padded payload so that decode can recover the
#: original length:  magic (2 bytes) + original length (8 bytes).
_HEADER = struct.Struct(">HQ")
_MAGIC = 0x5343  # "SC"


@dataclass(frozen=True)
class CodedBlock:
    """One erasure-coded block: its row ``index`` in the code and the payload."""

    index: int
    payload: bytes


class ErasureCoder:
    """Systematic ``(n, k)`` Reed–Solomon coder.

    Parameters
    ----------
    n:
        Total number of blocks produced (one per cloud).
    k:
        Number of blocks required to reconstruct the data.
    """

    def __init__(self, n: int, k: int):
        if not 1 <= k <= n:
            raise ValueError(f"invalid erasure-code parameters n={n}, k={k}")
        if n > 255:
            raise ValueError("GF(256) Reed-Solomon supports at most 255 blocks")
        self.n = n
        self.k = k
        self._matrix = self._systematic_matrix(n, k)
        #: Parity rows only — the systematic rows are the identity and are
        #: served as plain slices by :meth:`encode`.
        self._parity_matrix = self._matrix[k:]
        #: Inverted decode submatrices keyed by the tuple of surviving block
        #: indices (at most C(n, k) entries for DepSky's tiny n).
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    @staticmethod
    def _systematic_matrix(n: int, k: int) -> np.ndarray:
        vander = gf256.vandermonde(n, k)
        top_inv = gf256.invert_matrix(vander[:k, :k])
        return gf256.matmul_matrix(vander, top_inv)

    # ------------------------------------------------------------------ API

    def encode(self, data: bytes) -> list[CodedBlock]:
        """Split ``data`` into ``n`` coded blocks, any ``k`` of which rebuild it."""
        framed = _HEADER.pack(_MAGIC, len(data)) + data
        block_len = (len(framed) + self.k - 1) // self.k
        padded = framed.ljust(block_len * self.k, b"\x00")
        # Systematic fast path: blocks 0..k-1 are plain slices of the payload.
        coded = [
            CodedBlock(index=i, payload=padded[i * block_len:(i + 1) * block_len])
            for i in range(self.k)
        ]
        if self.n > self.k:
            blocks = np.frombuffer(padded, dtype=np.uint8).reshape(self.k, block_len)
            parity = gf256.matmul(self._parity_matrix, blocks)
            coded.extend(
                CodedBlock(index=self.k + i, payload=parity[i].tobytes())
                for i in range(self.n - self.k)
            )
        return coded

    def decode(self, blocks: list[CodedBlock]) -> bytes:
        """Rebuild the original data from any ``k`` distinct coded blocks."""
        unique: dict[int, CodedBlock] = {}
        for block in blocks:
            if not 0 <= block.index < self.n:
                raise ValueError(f"block index {block.index} out of range for n={self.n}")
            unique.setdefault(block.index, block)
        if len(unique) < self.k:
            raise ValueError(f"need at least {self.k} distinct blocks, got {len(unique)}")
        # Sorting prefers systematic (low-index) blocks, maximising fast-path hits.
        chosen = sorted(unique.values(), key=lambda b: b.index)[: self.k]
        lengths = {len(b.payload) for b in chosen}
        if len(lengths) != 1:
            raise ValueError("coded blocks have inconsistent lengths")
        block_len = lengths.pop()
        indices = tuple(b.index for b in chosen)
        if indices == tuple(range(self.k)):
            # Systematic fast path: the data blocks survived, no arithmetic.
            framed = b"".join(b.payload for b in chosen)
        else:
            inverse = self._decode_matrix(indices)
            stacked = np.stack(
                [np.frombuffer(b.payload, dtype=np.uint8) for b in chosen]
            )
            data_blocks = gf256.matmul(inverse, stacked)
            framed = data_blocks.reshape(-1).tobytes()[: self.k * block_len]
        magic, length = _HEADER.unpack_from(framed)
        if magic != _MAGIC:
            raise ValueError("decoded data has an invalid header (wrong blocks?)")
        payload = framed[_HEADER.size : _HEADER.size + length]
        if len(payload) != length:
            raise ValueError("decoded data is truncated")
        return payload

    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        """Inverted decode submatrix for the surviving ``indices`` (cached)."""
        inverse = self._decode_cache.get(indices)
        if inverse is None:
            submatrix = self._matrix[list(indices)]
            try:
                inverse = gf256.invert_matrix(submatrix)
            except SingularMatrixError as exc:
                raise SingularMatrixError(
                    f"cannot decode from blocks {list(indices)}: insufficient "
                    f"independent blocks (need {self.k} linearly independent rows)"
                ) from exc
            self._decode_cache[indices] = inverse
        return inverse

    def block_size(self, data_len: int) -> int:
        """Size in bytes of each coded block for a payload of ``data_len`` bytes."""
        framed = _HEADER.size + data_len
        return (framed + self.k - 1) // self.k

    def storage_overhead(self) -> float:
        """Ratio of total stored bytes to original bytes (``n / k``)."""
        return self.n / self.k
