"""Systematic Reed–Solomon erasure coding over GF(2^8).

DepSky (Figure 6, step 3) erasure-codes the encrypted file so that each of the
``n = 3f+1`` clouds stores a block of roughly ``1/k`` of the file size, with
``k = f+1`` blocks sufficient to rebuild it.  For the default ``f = 1`` this
yields the ~50 % storage overhead the paper reports in Figure 11(c): two
clouds store half the file each and a third stores one extra coded block (the
fourth cloud is not used for data when *preferred quorums* are enabled).

The implementation uses a systematic encoding matrix: the first ``k`` output
blocks are the plain data blocks and the remaining ``n - k`` are parity.
Decoding from any ``k`` available blocks inverts the corresponding rows.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.crypto import gf256

#: Header prepended to the padded payload so that decode can recover the
#: original length:  magic (2 bytes) + original length (8 bytes).
_HEADER = struct.Struct(">HQ")
_MAGIC = 0x5343  # "SC"


@dataclass(frozen=True)
class CodedBlock:
    """One erasure-coded block: its row ``index`` in the code and the payload."""

    index: int
    payload: bytes


class ErasureCoder:
    """Systematic ``(n, k)`` Reed–Solomon coder.

    Parameters
    ----------
    n:
        Total number of blocks produced (one per cloud).
    k:
        Number of blocks required to reconstruct the data.
    """

    def __init__(self, n: int, k: int):
        if not 1 <= k <= n:
            raise ValueError(f"invalid erasure-code parameters n={n}, k={k}")
        if n > 255:
            raise ValueError("GF(256) Reed-Solomon supports at most 255 blocks")
        self.n = n
        self.k = k
        self._matrix = self._systematic_matrix(n, k)

    @staticmethod
    def _systematic_matrix(n: int, k: int) -> np.ndarray:
        vander = gf256.vandermonde(n, k)
        top_inv = gf256.invert_matrix(vander[:k, :k])
        return gf256.matmul_matrix(vander, top_inv)

    # ------------------------------------------------------------------ API

    def encode(self, data: bytes) -> list[CodedBlock]:
        """Split ``data`` into ``n`` coded blocks, any ``k`` of which rebuild it."""
        framed = _HEADER.pack(_MAGIC, len(data)) + data
        block_len = (len(framed) + self.k - 1) // self.k
        padded = framed.ljust(block_len * self.k, b"\x00")
        blocks = np.frombuffer(padded, dtype=np.uint8).reshape(self.k, block_len)
        coded = gf256.matmul(self._matrix, blocks)
        return [CodedBlock(index=i, payload=coded[i].tobytes()) for i in range(self.n)]

    def decode(self, blocks: list[CodedBlock]) -> bytes:
        """Rebuild the original data from any ``k`` distinct coded blocks."""
        unique: dict[int, CodedBlock] = {}
        for block in blocks:
            if not 0 <= block.index < self.n:
                raise ValueError(f"block index {block.index} out of range for n={self.n}")
            unique.setdefault(block.index, block)
        if len(unique) < self.k:
            raise ValueError(f"need at least {self.k} distinct blocks, got {len(unique)}")
        chosen = sorted(unique.values(), key=lambda b: b.index)[: self.k]
        lengths = {len(b.payload) for b in chosen}
        if len(lengths) != 1:
            raise ValueError("coded blocks have inconsistent lengths")
        block_len = lengths.pop()
        submatrix = np.array(
            [self._matrix[b.index] for b in chosen], dtype=np.uint8
        )
        inverse = gf256.invert_matrix(submatrix)
        stacked = np.stack(
            [np.frombuffer(b.payload, dtype=np.uint8) for b in chosen]
        )
        data_blocks = gf256.matmul(inverse, stacked)
        framed = data_blocks.reshape(-1).tobytes()[: self.k * block_len]
        magic, length = _HEADER.unpack_from(framed)
        if magic != _MAGIC:
            raise ValueError("decoded data has an invalid header (wrong blocks?)")
        payload = framed[_HEADER.size : _HEADER.size + length]
        if len(payload) != length:
            raise ValueError("decoded data is truncated")
        return payload

    def block_size(self, data_len: int) -> int:
        """Size in bytes of each coded block for a payload of ``data_len`` bytes."""
        framed = _HEADER.size + data_len
        return (framed + self.k - 1) // self.k

    def storage_overhead(self) -> float:
        """Ratio of total stored bytes to original bytes (``n / k``)."""
        return self.n / self.k
