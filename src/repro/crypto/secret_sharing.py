"""Shamir secret sharing over GF(2^8).

DepSky (Figure 6, step 4) splits the random file-encryption key into ``n``
shares such that any ``t`` of them recover the key but fewer reveal nothing.
Shares are computed byte-wise: for each byte of the secret a random polynomial
of degree ``t - 1`` is evaluated at the share's x-coordinate.

Polynomial evaluation and Lagrange interpolation are vectorised across all
secret bytes at once with ``MUL_TABLE`` gathers (one ``(len(secret), t)``
gather per share), so splitting a 32-byte key costs a handful of numpy calls
instead of ``n * t * len(secret)`` Python-level field multiplications.  The
random coefficients are still drawn one byte at a time so a seeded simulation
RNG produces the same shares as earlier scalar versions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.crypto import gf256


@dataclass(frozen=True)
class SecretShare:
    """One share of a secret: its x-coordinate (> 0) and the share bytes."""

    x: int
    data: bytes


def split_secret(secret: bytes, n: int, t: int, rng: random.Random | None = None) -> list[SecretShare]:
    """Split ``secret`` into ``n`` shares, any ``t`` of which reconstruct it.

    Parameters
    ----------
    secret:
        The secret bytes (e.g. a 32-byte file-encryption key).
    n:
        Number of shares to produce (at most 255).
    t:
        Threshold; ``1 <= t <= n``.
    rng:
        Source of randomness for the polynomial coefficients.  Passing the
        simulation RNG keeps runs deterministic; when omitted the system
        entropy source is used (never an unseeded ``random.Random()``, which
        would be both weaker and a hidden nondeterminism seam — DepSky always
        threads the simulation RNG through).
    """
    if not 1 <= t <= n <= 255:
        raise ValueError(f"invalid secret-sharing parameters n={n}, t={t}")
    rng = rng or random.SystemRandom()  # repro: allow[DET002] -- non-sim fallback: DepSky threads the simulation rng; bare calls get real entropy
    # One random polynomial per secret byte; coefficient 0 is the secret byte.
    coefficients = np.array(
        [[byte, *(rng.randrange(256) for _ in range(t - 1))] for byte in secret],
        dtype=np.uint8,
    ).reshape(len(secret), t)
    shares = []
    for x in range(1, n + 1):
        x_powers = np.array([gf256.gf_pow(x, power) for power in range(t)], dtype=np.uint8)
        values = np.bitwise_xor.reduce(
            gf256.MUL_TABLE[x_powers[None, :], coefficients], axis=1
        )
        shares.append(SecretShare(x=x, data=values.tobytes()))
    return shares


def combine_secret(shares: list[SecretShare], t: int) -> bytes:
    """Reconstruct the secret from at least ``t`` distinct shares (Lagrange at x=0)."""
    unique: dict[int, SecretShare] = {}
    for share in shares:
        unique.setdefault(share.x, share)
    if len(unique) < t:
        raise ValueError(f"need at least {t} distinct shares, got {len(unique)}")
    chosen = sorted(unique.values(), key=lambda s: s.x)[:t]
    lengths = {len(s.data) for s in chosen}
    if len(lengths) != 1:
        raise ValueError("shares have inconsistent lengths")
    (secret_len,) = lengths
    # Lagrange basis coefficients evaluated at x = 0 (tiny, stays scalar).
    coefficients = []
    for i, share_i in enumerate(chosen):
        numerator, denominator = 1, 1
        for j, share_j in enumerate(chosen):
            if i == j:
                continue
            numerator = gf256.gf_mul(numerator, share_j.x)
            denominator = gf256.gf_mul(denominator, share_i.x ^ share_j.x)
        coefficients.append(gf256.gf_div(numerator, denominator))
    secret = np.zeros(secret_len, dtype=np.uint8)
    for coeff, share in zip(coefficients, chosen, strict=True):
        secret ^= gf256.mul_block(coeff, np.frombuffer(share.data, dtype=np.uint8))
    return secret.tobytes()
