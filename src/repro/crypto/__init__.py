"""Cryptographic and coding substrate used by the DepSky cloud-of-clouds backend.

Everything here is implemented from scratch on top of the Python standard
library and numpy, because the execution environment provides no third-party
cryptography package:

* :mod:`~repro.crypto.hashing` — collision-resistant content digests (the
  ``Hash(v)`` of the consistency-anchor algorithm, Figure 3);
* :mod:`~repro.crypto.gf256` — arithmetic in GF(2^8), shared by the erasure
  code and the secret-sharing scheme;
* :mod:`~repro.crypto.erasure` — systematic Reed–Solomon erasure coding
  (DepSky stores ``k = f+1`` of ``n = 3f+1`` blocks per cloud, Figure 6);
* :mod:`~repro.crypto.secret_sharing` — Shamir secret sharing of the random
  file-encryption key (Figure 6, step 4);
* :mod:`~repro.crypto.cipher` — an authenticated stream cipher used to encrypt
  file data before it leaves the client (Figure 6, step 2).

The cipher is *not* meant to be production-grade cryptography; it is a
faithful stand-in that exercises the same code paths (keys, confidentiality,
integrity tags) with deterministic, dependency-free primitives.
"""

from repro.crypto.hashing import content_digest, hmac_digest
from repro.crypto.cipher import SymmetricCipher, generate_key
from repro.crypto.erasure import ErasureCoder
from repro.crypto.secret_sharing import split_secret, combine_secret, SecretShare

__all__ = [
    "content_digest",
    "hmac_digest",
    "SymmetricCipher",
    "generate_key",
    "ErasureCoder",
    "split_secret",
    "combine_secret",
    "SecretShare",
]
