"""Arithmetic in the finite field GF(2^8).

Both the Reed–Solomon erasure code and the Shamir secret-sharing scheme used
by the DepSky backend operate byte-wise over GF(2^8) with the AES reduction
polynomial ``x^8 + x^4 + x^3 + x + 1`` (0x11B).  Exponential/logarithm tables
are precomputed once; numpy lookup tables give vectorised multiplication of
whole data blocks by a field scalar.
"""

from __future__ import annotations

import numpy as np

#: AES reduction polynomial.
_POLY = 0x11B
#: Generator of the multiplicative group used to build the exp/log tables.
_GENERATOR = 0x03

FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint16)
    log = np.zeros(256, dtype=np.uint16)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator (0x03 = x + 1): x*3 = x*2 ^ x
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= _POLY
        x = x2 ^ x
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    # Full 256x256 multiplication table used for vectorised block operations.
    mul = np.zeros((256, 256), dtype=np.uint8)
    for a in range(1, 256):
        la = int(log[a])
        for b in range(1, 256):
            mul[a, b] = exp[la + int(log[b])]
    return exp, log, mul


_EXP, _LOG, MUL_TABLE = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` (``b`` must be non-zero)."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a`` (``a`` must be non-zero)."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to ``exponent``."""
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) * exponent) % 255])


def gf_add(a: int, b: int) -> int:
    """Addition (and subtraction) in GF(2^8) is XOR."""
    return a ^ b


def mul_block(scalar: int, block: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``block`` by the field ``scalar`` (vectorised)."""
    if scalar == 0:
        return np.zeros_like(block)
    if scalar == 1:
        return block.copy()
    return MUL_TABLE[scalar][block]


def matmul(matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Multiply an ``(r, k)`` GF(256) matrix by ``k`` data blocks.

    ``blocks`` has shape ``(k, block_len)`` with dtype ``uint8``; the result
    has shape ``(r, block_len)``.  Used by the erasure coder for both encoding
    and decoding.
    """
    rows, cols = matrix.shape
    if blocks.shape[0] != cols:
        raise ValueError(f"matrix expects {cols} input blocks, got {blocks.shape[0]}")
    out = np.zeros((rows, blocks.shape[1]), dtype=np.uint8)
    for i in range(rows):
        acc = np.zeros(blocks.shape[1], dtype=np.uint8)
        for j in range(cols):
            coeff = int(matrix[i, j])
            if coeff == 0:
                continue
            acc ^= mul_block(coeff, blocks[j])
        out[i] = acc
    return out


def matmul_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(256) matrices (small dimensions, scalar loop)."""
    rows, inner = a.shape
    inner_b, cols = b.shape
    if inner != inner_b:
        raise ValueError("matrix dimensions do not match")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            acc = 0
            for m in range(inner):
                acc ^= gf_mul(int(a[r, m]), int(b[m, c]))
            out[r, c] = acc
    return out


def invert_matrix(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss–Jordan elimination.

    Raises ``ValueError`` if the matrix is singular.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    work = matrix.astype(np.int64).copy()
    inverse = np.eye(n, dtype=np.int64)
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if work[r, col] != 0), None)
        if pivot_row is None:
            raise ValueError("matrix is singular over GF(256)")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = gf_inv(int(work[col, col]))
        for c in range(n):
            work[col, c] = gf_mul(int(work[col, c]), pivot_inv)
            inverse[col, c] = gf_mul(int(inverse[col, c]), pivot_inv)
        for r in range(n):
            if r == col or work[r, col] == 0:
                continue
            factor = int(work[r, col])
            for c in range(n):
                work[r, c] ^= gf_mul(factor, int(work[col, c]))
                inverse[r, c] ^= gf_mul(factor, int(inverse[col, c]))
    return inverse.astype(np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Return the ``rows x cols`` Vandermonde matrix with x_i = i + 1.

    Using ``i + 1`` (instead of ``i``) keeps every row non-zero so any square
    submatrix obtained after systematisation stays invertible for the small
    ``(n, k)`` configurations DepSky uses.
    """
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            matrix[r, c] = gf_pow(r + 1, c)
    return matrix
