"""Arithmetic in the finite field GF(2^8), fully vectorised with numpy.

Both the Reed–Solomon erasure code and the Shamir secret-sharing scheme used
by the DepSky backend operate byte-wise over GF(2^8) with the AES reduction
polynomial ``x^8 + x^4 + x^3 + x + 1`` (0x11B).

Vectorisation strategy
----------------------
Every SCFS write erasure-codes its payload, so :func:`matmul` is the single
hottest function in the system.  It is implemented without any Python-level
inner loop, with **three** kernel strategies chosen by a size heuristic:

* **Row gather** (small matrices, short blocks): one whole-block row gather
  ``MUL_TABLE[coeff][block]`` per non-zero coefficient, XOR-accumulated (XOR
  is addition in GF(2^8)).  ``MUL_TABLE`` is the full precomputed 256×256
  product table; a row of it is 256 bytes and stays L1-resident across the
  gather.  This path has the lowest fixed overhead and wins whenever the
  per-coefficient table setup of the nibble-split path cannot amortise.
* **Nibble split** (long blocks — the erasure-encode hot path): every field
  product decomposes over the two nibbles of the input byte,
  ``c·b = c·(b & 0x0F) ⊕ c·(b >> 4 << 4)``, so per coefficient only the two
  16-entry columns of :data:`NIBBLE_TABLE` (a precomputed ``(256, 2, 16)``
  tensor that stays L1-resident) are needed.  The kernel expands them once
  per coefficient — an outer XOR of the low/high nibble products — into a
  65536-entry ``uint16`` *pair table* mapping two adjacent input bytes to
  their two product bytes, then gathers two bytes per ``take`` on ``uint16``
  views of the row buffers and XOR-accumulates on ``uint64`` views (falling
  back to byte-wise XOR for tails and unaligned rows).  Halving the gather
  count is what breaks the one-gather-per-coefficient ceiling of the row
  path: the pair tables cost ~15 µs each to build and are cached (bounded by
  :data:`_PAIR_CACHE_MAX`), so throughput roughly doubles at ≥64 KiB blocks.
* **3-D gather** (large matrices, short blocks): a single gather
  ``MUL_TABLE[matrix[:, :, None], blocks[None, :, :]]`` producing the
  ``(r, k, L)`` tensor of partial products, reduced along the shared ``k``
  axis with ``np.bitwise_xor.reduce``.  The tensor materialises ``r * k * L``
  bytes, so long blocks are processed in slices of at most
  :data:`_MAX_GATHER_BYTES` of temporary memory.

:func:`matmul` and :func:`mul_block` accept an ``out=`` destination so
callers on the streaming write pipeline can reuse buffers; aliasing the
output with an input is rejected loudly (``ValueError``) because the kernels
accumulate in place.

:func:`matmul_matrix` and :func:`invert_matrix` (Gauss–Jordan with
whole-matrix row elimination per pivot) use the plain gather idiom; the
erasure layer additionally caches inversion results per surviving-block
pattern (see ``repro.crypto.erasure.ErasureCoder``).

A deliberately scalar reference implementation — a triple-nested Python loop
over per-element table lookups, :func:`_matmul_scalar` — exists purely so
property tests can cross-check every vectorised path byte-for-byte and so
the throughput benchmark (``benchmarks/bench_coding_throughput.py``) can
assert the vectorised paths stay orders of magnitude ahead of per-element
Python.

:func:`invert_matrix` raises
:class:`~repro.common.errors.SingularMatrixError` (a ``ValueError``
subclass) when the matrix has no inverse.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SingularMatrixError

#: AES reduction polynomial.
_POLY = 0x11B
#: Generator of the multiplicative group used to build the exp/log tables.
_GENERATOR = 0x03

FIELD_SIZE = 256

#: Upper bound on the temporary gather tensor materialised by one
#: :func:`matmul` slice (bytes).  64 MiB keeps peak memory flat even when
#: encoding multi-hundred-MB payloads while staying far above the size where
#: numpy's per-call overhead would matter.
_MAX_GATHER_BYTES = 1 << 26


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint16)
    log = np.zeros(256, dtype=np.uint16)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator (0x03 = x + 1): x*3 = x*2 ^ x
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= _POLY
        x = x2 ^ x
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    # Full 256x256 multiplication table used for vectorised block operations.
    mul = np.zeros((256, 256), dtype=np.uint8)
    for a in range(1, 256):
        la = int(log[a])
        for b in range(1, 256):
            mul[a, b] = exp[la + int(log[b])]
    return exp, log, mul


_EXP, _LOG, MUL_TABLE = _build_tables()

#: Nibble product tensor ``(256, 2, 16)``: ``NIBBLE_TABLE[c, 0, v] = c·v``
#: and ``NIBBLE_TABLE[c, 1, v] = c·(v << 4)``.  The 32 bytes per coefficient
#: stay L1-resident; the nibble-split kernel expands them into per-coefficient
#: pair tables (see :func:`_pair_table`).
NIBBLE_TABLE = np.stack(
    [MUL_TABLE[:, :16], MUL_TABLE[:, [v << 4 for v in range(16)]]], axis=1
)

_LOW_NIBBLE = np.arange(256) & 0x0F
_HIGH_NIBBLE = np.arange(256) >> 4

#: Bound on cached per-coefficient pair tables (128 KiB each); DepSky's
#: encode matrices use far fewer distinct coefficients than this, so in
#: practice every coefficient of a coder's parity matrix stays cached.
_PAIR_CACHE_MAX = 64

_pair_cache: dict[int, np.ndarray] = {}


def _pair_table(coeff: int) -> np.ndarray:
    """The 65536-entry ``uint16`` pair-product table for one coefficient.

    Index a table entry by the native-endian ``uint16`` word of two adjacent
    input bytes and it holds the ``uint16`` word of their two product bytes —
    the construction composes with byte order symmetrically, so the same
    layout is correct on little- and big-endian hosts.  Built from the two
    16-entry nibble columns by an outer XOR (every byte product is
    ``low[b & 0x0F] ^ high[b >> 4]``); cached because one build costs ~15 µs
    while the erasure coder reuses the same few coefficients every call.
    """
    table = _pair_cache.get(coeff)
    if table is None:
        low = NIBBLE_TABLE[coeff, 0].astype(np.uint16)
        high = NIBBLE_TABLE[coeff, 1].astype(np.uint16)
        byte_products = low[_LOW_NIBBLE] ^ high[_HIGH_NIBBLE]  # (256,) uint16
        table = ((byte_products[:, None] << np.uint16(8)) | byte_products[None, :])
        table = np.ascontiguousarray(table.reshape(-1))
        if len(_pair_cache) >= _PAIR_CACHE_MAX:
            _pair_cache.pop(next(iter(_pair_cache)))
        _pair_cache[coeff] = table
    return table


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` (``b`` must be non-zero)."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a`` (``a`` must be non-zero)."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to ``exponent``."""
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) * exponent) % 255])


def gf_add(a: int, b: int) -> int:
    """Addition (and subtraction) in GF(2^8) is XOR."""
    return a ^ b


def mul_block(scalar: int, block: np.ndarray,
              out: np.ndarray | None = None) -> np.ndarray:
    """Multiply every byte of ``block`` by the field ``scalar`` (vectorised).

    With ``out=`` the product is written into the caller's buffer (same shape
    and dtype as ``block``); aliasing ``out`` with ``block`` is rejected.
    """
    if out is not None:
        if out.shape != block.shape or out.dtype != np.uint8:
            raise ValueError("out must be a uint8 array of the block's shape")
        if np.shares_memory(out, block):
            raise ValueError("mul_block out= must not alias the input block")
        if scalar == 0:
            out.fill(0)
        elif scalar == 1:
            out[...] = block
        else:
            out[...] = MUL_TABLE[scalar][block]
        return out
    if scalar == 0:
        return np.zeros_like(block)
    if scalar == 1:
        return block.copy()
    return MUL_TABLE[scalar][block]


#: Below this many matrix entries, per-coefficient row gathers beat the 3-D
#: gather: the Python loop runs r*k times over whole-block numpy ops, while
#: the 3-D gather pays for materialising and re-reading the (r, k, L) tensor.
_DENSE_GATHER_MIN_ENTRIES = 64

#: At and above this block length the nibble-split pair-table kernel wins:
#: its per-coefficient setup (two 16-entry columns expanded into a 128 KiB
#: pair table, ~15 µs, cached) amortises and its two-bytes-per-gather main
#: loop runs ~2x faster than one-gather-per-byte row gathers.
_NIBBLE_MIN_BYTES = 1 << 15


def _check_out(out: np.ndarray, rows: int, length: int,
               matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Validate a caller-supplied ``out=`` buffer (shape, dtype, aliasing)."""
    if out.shape != (rows, length) or out.dtype != np.uint8:
        raise ValueError(
            f"out must be a uint8 array of shape {(rows, length)}, "
            f"got {out.dtype} {out.shape}")
    if np.shares_memory(out, blocks) or np.shares_memory(out, matrix):
        raise ValueError("matmul out= must not alias the inputs "
                         "(the kernels accumulate in place)")
    return out


def matmul(matrix: np.ndarray, blocks: np.ndarray,
           out: np.ndarray | None = None) -> np.ndarray:
    """Multiply an ``(r, k)`` GF(256) matrix by ``k`` data blocks.

    ``blocks`` has shape ``(k, block_len)`` with dtype ``uint8``; the result
    has shape ``(r, block_len)``.  Used by the erasure coder for both
    encoding and decoding.  Three fully vectorised strategies, chosen by
    matrix size and block length (see the module docstring): per-coefficient
    row gathers for small matrices on short blocks, the nibble-split
    pair-table kernel for long blocks, and the chunked 3-D gather for large
    matrices on short blocks.

    ``out=`` writes the result into a caller-owned ``(r, block_len)`` uint8
    array (its prior contents are discarded); rows of ``out`` may be strided
    views into a larger buffer as long as each row is contiguous.  Aliasing
    ``out`` with an input raises ``ValueError``.
    """
    rows, cols = matrix.shape
    if blocks.shape[0] != cols:
        raise ValueError(f"matrix expects {cols} input blocks, got {blocks.shape[0]}")
    length = blocks.shape[1]
    if rows == 0 or cols == 0 or length == 0:
        if out is not None:
            _check_out(out, rows, length, matrix, blocks).fill(0)
            return out
        return np.zeros((rows, length), dtype=np.uint8)
    matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
    if blocks.dtype != np.uint8 or blocks.strides[-1] != 1:
        # Rows must be contiguous byte runs; the 2-D array itself may be a
        # strided (column-sliced) view, which the stripe encoder relies on.
        blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if out is not None:
        _check_out(out, rows, length, matrix, blocks)
    if length >= _NIBBLE_MIN_BYTES:
        if out is None:
            out = np.zeros((rows, length), dtype=np.uint8)
        else:
            out.fill(0)
        return _matmul_nibble(matrix, blocks, out)
    if rows * cols <= _DENSE_GATHER_MIN_ENTRIES:
        if out is None:
            out = np.zeros((rows, length), dtype=np.uint8)
        else:
            out.fill(0)
        for i in range(rows):
            for j in range(cols):
                coeff = int(matrix[i, j])
                if coeff == 0:
                    continue
                if coeff == 1:
                    out[i] ^= blocks[j]
                else:
                    out[i] ^= MUL_TABLE[coeff][blocks[j]]
        return out
    if out is None:
        out = np.empty((rows, length), dtype=np.uint8)
    chunk = max(1, _MAX_GATHER_BYTES // (rows * cols))
    expanded = matrix[:, :, None]
    for start in range(0, length, chunk):
        segment = blocks[None, :, start:start + chunk]
        np.bitwise_xor.reduce(MUL_TABLE[expanded, segment], axis=1,
                              out=out[:, start:start + chunk])
    return out


def _xor_accumulate(dst: np.ndarray, src: np.ndarray) -> None:
    """``dst ^= src`` with the XOR run on ``uint64`` views where possible.

    ``dst`` is a contiguous uint8 row slice of even length, ``src`` the
    freshly gathered contiguous ``uint16`` products covering it.  Rows views
    carved out of a larger buffer may be unaligned or of length not divisible
    by 8, in which case the accumulation falls back to ``uint16``/``uint8``
    lanes — numpy handles unaligned views, just without the widest stride.
    """
    n = dst.shape[0]
    if n % 8 == 0:
        try:
            d64 = dst.view(np.uint64)
        except ValueError:  # non-contiguous destination row
            dst ^= src.view(np.uint8)
            return
        np.bitwise_xor(d64, src.view(np.uint64), out=d64)
    else:
        try:
            d16 = dst.view(np.uint16)
        except ValueError:
            dst ^= src.view(np.uint8)
            return
        np.bitwise_xor(d16, src, out=d16)


def _matmul_nibble(matrix: np.ndarray, blocks: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
    """Nibble-split pair-table kernel; accumulates into the zeroed ``out``.

    Gathers two input bytes per ``take`` through the per-coefficient pair
    table derived from :data:`NIBBLE_TABLE` and XOR-accumulates the product
    words on wide views of the output rows.  An odd trailing byte is folded
    in through the plain ``MUL_TABLE`` row.
    """
    rows, cols = matrix.shape
    length = blocks.shape[1]
    even = length & ~1
    words = []
    for j in range(cols):
        row = blocks[j, :even]
        try:
            words.append(row.view(np.uint16))
        except ValueError:  # non-contiguous row — copy once, not per coeff
            words.append(np.ascontiguousarray(row).view(np.uint16))
    for i in range(rows):
        dst = out[i, :even]
        for j in range(cols):
            coeff = int(matrix[i, j])
            if coeff == 0:
                continue
            if coeff == 1:
                out[i] ^= blocks[j]
                continue
            products = _pair_table(coeff).take(words[j])
            _xor_accumulate(dst, products)
            if even != length:
                out[i, -1] ^= MUL_TABLE[coeff, blocks[j, -1]]
    return out


def _matmul_scalar(matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Scalar reference implementation of :func:`matmul`.

    Triple-nested Python loops over per-element table lookups.  This exists
    only so property tests can cross-check the vectorised paths
    byte-for-byte and so the coding-throughput benchmark has a
    per-element-Python baseline to gate against; never call it on a hot path.
    """
    rows, cols = matrix.shape
    if blocks.shape[0] != cols:
        raise ValueError(f"matrix expects {cols} input blocks, got {blocks.shape[0]}")
    length = blocks.shape[1]
    inputs = [blocks[j].tolist() for j in range(cols)]
    out = np.zeros((rows, length), dtype=np.uint8)
    for i in range(rows):
        acc = [0] * length
        for j in range(cols):
            coeff = int(matrix[i, j])
            if coeff == 0:
                continue
            row = inputs[j]
            for position in range(length):
                acc[position] ^= gf_mul(coeff, row[position])
        out[i] = acc
    return out


def matmul_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(256) matrices (one gather + XOR reduction)."""
    rows, inner = a.shape
    inner_b, cols = b.shape
    if inner != inner_b:
        raise ValueError("matrix dimensions do not match")
    if rows == 0 or inner == 0 or cols == 0:
        return np.zeros((rows, cols), dtype=np.uint8)
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    products = MUL_TABLE[a[:, :, None], b[None, :, :]]
    return np.bitwise_xor.reduce(products, axis=1)


def invert_matrix(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss–Jordan elimination.

    Row normalisation and elimination are whole-matrix ``MUL_TABLE`` gathers
    (one per pivot column) rather than per-element loops.  Raises
    :class:`~repro.common.errors.SingularMatrixError` — a ``ValueError``
    subclass — if the matrix is singular.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    work = np.ascontiguousarray(matrix, dtype=np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot_candidates = np.nonzero(work[col:, col])[0]
        if pivot_candidates.size == 0:
            raise SingularMatrixError("matrix is singular over GF(256)")
        pivot_row = col + int(pivot_candidates[0])
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = gf_inv(int(work[col, col]))
        work[col] = MUL_TABLE[pivot_inv, work[col]]
        inverse[col] = MUL_TABLE[pivot_inv, inverse[col]]
        # Eliminate the pivot column from every other row in one shot.
        factors = work[:, col].copy()
        factors[col] = 0
        work ^= MUL_TABLE[factors[:, None], work[col][None, :]]
        inverse ^= MUL_TABLE[factors[:, None], inverse[col][None, :]]
    return inverse


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Return the ``rows x cols`` Vandermonde matrix with x_i = i + 1.

    Using ``i + 1`` (instead of ``i``) keeps every row non-zero so any square
    submatrix obtained after systematisation stays invertible for the small
    ``(n, k)`` configurations DepSky uses.  Built in one shot from the
    exp/log tables: entry ``(r, c)`` is ``(r+1)^c = exp((log(r+1) · c) mod
    255)`` — no non-zero base occurs because ``r + 1 >= 1``.
    """
    if rows == 0 or cols == 0:
        return np.zeros((rows, cols), dtype=np.uint8)
    logs = _LOG[np.arange(1, rows + 1)].astype(np.int64)
    exponents = (logs[:, None] * np.arange(cols, dtype=np.int64)[None, :]) % 255
    matrix = _EXP[exponents].astype(np.uint8)
    matrix[:, 0] = 1  # x^0 == 1 for every base
    return matrix
