"""Arithmetic in the finite field GF(2^8), fully vectorised with numpy.

Both the Reed–Solomon erasure code and the Shamir secret-sharing scheme used
by the DepSky backend operate byte-wise over GF(2^8) with the AES reduction
polynomial ``x^8 + x^4 + x^3 + x + 1`` (0x11B).

Vectorisation strategy
----------------------
Every SCFS write erasure-codes its payload, so :func:`matmul` is the single
hottest function in the system.  It is implemented without any Python-level
inner loop:

* ``MUL_TABLE`` is the full precomputed 256×256 product table, so multiplying
  a coefficient matrix ``(r, k)`` by data blocks ``(k, L)`` is pure
  fancy-indexed gathering: for the tiny matrices DepSky uses, one whole-block
  row gather ``MUL_TABLE[coeff][block]`` per non-zero coefficient,
  XOR-accumulated (XOR is addition in GF(2^8)); for larger matrices, a single
  gather ``MUL_TABLE[matrix[:, :, None], blocks[None, :, :]]`` producing the
  ``(r, k, L)`` tensor of partial products, reduced along the shared ``k``
  axis with ``np.bitwise_xor.reduce``.
* The 3-D gather materialises ``r * k * L`` bytes, so long blocks are
  processed in slices of at most :data:`_MAX_GATHER_BYTES` of temporary
  memory; callers can hand :func:`matmul` arbitrarily large payloads without
  a proportional allocation spike.
* :func:`matmul_matrix` and :func:`invert_matrix` (Gauss–Jordan with
  whole-matrix row elimination per pivot) use the same gather idiom; the
  erasure layer additionally caches inversion results per surviving-block
  pattern (see ``repro.crypto.erasure.ErasureCoder``).

A deliberately scalar reference implementation — a triple-nested Python loop
over per-element table lookups, :func:`_matmul_scalar` — exists purely so
property tests can cross-check the vectorised path byte-for-byte and so the
throughput benchmark (``benchmarks/bench_coding_throughput.py``) can assert
the vectorised path stays orders of magnitude ahead of per-element Python.
(The pre-vectorisation ``matmul`` was already accumulating per-coefficient
row gathers; the wins of this layer over it are the parity-only systematic
encode, the concatenation decode, the cached decode matrices and the bounded
chunking, not the kernel alone.)

:func:`invert_matrix` raises
:class:`~repro.common.errors.SingularMatrixError` (a ``ValueError``
subclass) when the matrix has no inverse.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SingularMatrixError

#: AES reduction polynomial.
_POLY = 0x11B
#: Generator of the multiplicative group used to build the exp/log tables.
_GENERATOR = 0x03

FIELD_SIZE = 256

#: Upper bound on the temporary gather tensor materialised by one
#: :func:`matmul` slice (bytes).  64 MiB keeps peak memory flat even when
#: encoding multi-hundred-MB payloads while staying far above the size where
#: numpy's per-call overhead would matter.
_MAX_GATHER_BYTES = 1 << 26


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint16)
    log = np.zeros(256, dtype=np.uint16)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator (0x03 = x + 1): x*3 = x*2 ^ x
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= _POLY
        x = x2 ^ x
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    # Full 256x256 multiplication table used for vectorised block operations.
    mul = np.zeros((256, 256), dtype=np.uint8)
    for a in range(1, 256):
        la = int(log[a])
        for b in range(1, 256):
            mul[a, b] = exp[la + int(log[b])]
    return exp, log, mul


_EXP, _LOG, MUL_TABLE = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[int(_LOG[a]) + int(_LOG[b])])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` (``b`` must be non-zero)."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a`` (``a`` must be non-zero)."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(_EXP[255 - int(_LOG[a])])


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to ``exponent``."""
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(int(_LOG[a]) * exponent) % 255])


def gf_add(a: int, b: int) -> int:
    """Addition (and subtraction) in GF(2^8) is XOR."""
    return a ^ b


def mul_block(scalar: int, block: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``block`` by the field ``scalar`` (vectorised)."""
    if scalar == 0:
        return np.zeros_like(block)
    if scalar == 1:
        return block.copy()
    return MUL_TABLE[scalar][block]


#: Below this many matrix entries, per-coefficient row gathers beat the 3-D
#: gather: the Python loop runs r*k times over whole-block numpy ops, while
#: the 3-D gather pays for materialising and re-reading the (r, k, L) tensor.
_DENSE_GATHER_MIN_ENTRIES = 64


def matmul(matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Multiply an ``(r, k)`` GF(256) matrix by ``k`` data blocks.

    ``blocks`` has shape ``(k, block_len)`` with dtype ``uint8``; the result
    has shape ``(r, block_len)``.  Used by the erasure coder for both encoding
    and decoding.  Two fully vectorised strategies, chosen by matrix size:

    * small matrices (DepSky's ``(n, k)`` always land here) accumulate one
      fancy-indexed ``MUL_TABLE`` row gather per non-zero coefficient —
      ``r * k`` whole-block numpy ops with no per-element Python work;
    * larger matrices use a single 3-D gather
      ``MUL_TABLE[matrix[:, :, None], blocks[None, :, :]]`` reduced along the
      shared axis with ``np.bitwise_xor.reduce``, sliced so the temporary
      tensor stays under :data:`_MAX_GATHER_BYTES`.
    """
    rows, cols = matrix.shape
    if blocks.shape[0] != cols:
        raise ValueError(f"matrix expects {cols} input blocks, got {blocks.shape[0]}")
    length = blocks.shape[1]
    if rows == 0 or cols == 0 or length == 0:
        return np.zeros((rows, length), dtype=np.uint8)
    matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if rows * cols <= _DENSE_GATHER_MIN_ENTRIES:
        out = np.zeros((rows, length), dtype=np.uint8)
        for i in range(rows):
            for j in range(cols):
                coeff = int(matrix[i, j])
                if coeff == 0:
                    continue
                if coeff == 1:
                    out[i] ^= blocks[j]
                else:
                    out[i] ^= MUL_TABLE[coeff][blocks[j]]
        return out
    out = np.empty((rows, length), dtype=np.uint8)
    chunk = max(1, _MAX_GATHER_BYTES // (rows * cols))
    expanded = matrix[:, :, None]
    for start in range(0, length, chunk):
        segment = blocks[None, :, start:start + chunk]
        np.bitwise_xor.reduce(MUL_TABLE[expanded, segment], axis=1,
                              out=out[:, start:start + chunk])
    return out


def _matmul_scalar(matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """Scalar reference implementation of :func:`matmul`.

    Triple-nested Python loops over per-element table lookups.  This exists
    only so property tests can cross-check the vectorised path byte-for-byte
    and so the coding-throughput benchmark has a per-element-Python baseline
    to gate against; never call it on a hot path.
    """
    rows, cols = matrix.shape
    if blocks.shape[0] != cols:
        raise ValueError(f"matrix expects {cols} input blocks, got {blocks.shape[0]}")
    length = blocks.shape[1]
    inputs = [blocks[j].tolist() for j in range(cols)]
    out = np.zeros((rows, length), dtype=np.uint8)
    for i in range(rows):
        acc = [0] * length
        for j in range(cols):
            coeff = int(matrix[i, j])
            if coeff == 0:
                continue
            row = inputs[j]
            for position in range(length):
                acc[position] ^= gf_mul(coeff, row[position])
        out[i] = acc
    return out


def matmul_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(256) matrices (one gather + XOR reduction)."""
    rows, inner = a.shape
    inner_b, cols = b.shape
    if inner != inner_b:
        raise ValueError("matrix dimensions do not match")
    if rows == 0 or inner == 0 or cols == 0:
        return np.zeros((rows, cols), dtype=np.uint8)
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    products = MUL_TABLE[a[:, :, None], b[None, :, :]]
    return np.bitwise_xor.reduce(products, axis=1)


def invert_matrix(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss–Jordan elimination.

    Row normalisation and elimination are whole-matrix ``MUL_TABLE`` gathers
    (one per pivot column) rather than per-element loops.  Raises
    :class:`~repro.common.errors.SingularMatrixError` — a ``ValueError``
    subclass — if the matrix is singular.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    work = np.ascontiguousarray(matrix, dtype=np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot_candidates = np.nonzero(work[col:, col])[0]
        if pivot_candidates.size == 0:
            raise SingularMatrixError("matrix is singular over GF(256)")
        pivot_row = col + int(pivot_candidates[0])
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = gf_inv(int(work[col, col]))
        work[col] = MUL_TABLE[pivot_inv, work[col]]
        inverse[col] = MUL_TABLE[pivot_inv, inverse[col]]
        # Eliminate the pivot column from every other row in one shot.
        factors = work[:, col].copy()
        factors[col] = 0
        work ^= MUL_TABLE[factors[:, None], work[col][None, :]]
        inverse ^= MUL_TABLE[factors[:, None], inverse[col][None, :]]
    return inverse


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Return the ``rows x cols`` Vandermonde matrix with x_i = i + 1.

    Using ``i + 1`` (instead of ``i``) keeps every row non-zero so any square
    submatrix obtained after systematisation stays invertible for the small
    ``(n, k)`` configurations DepSky uses.
    """
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            matrix[r, c] = gf_pow(r + 1, c)
    return matrix
