"""Collision-resistant digests.

The paper stores a SHA-1 hash of each file version in the metadata tuple; we
use SHA-256 (stronger, equally available in the standard library).  The digest
is the ``hash`` half of the ``(id, hash)`` pair kept in the consistency anchor
(Figure 3) and also names the per-version object in the storage clouds.
"""

from __future__ import annotations

import hashlib
import hmac


def content_digest(data: bytes) -> str:
    """Return the hex digest identifying ``data`` (collision resistant)."""
    return hashlib.sha256(data).hexdigest()


def short_digest(data: bytes, length: int = 16) -> str:
    """Return a truncated digest, handy for log messages and test fixtures."""
    return content_digest(data)[:length]


def hmac_digest(key: bytes, data: bytes) -> bytes:
    """Return an HMAC-SHA256 authentication tag of ``data`` under ``key``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def verify_hmac(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time verification of an HMAC tag produced by :func:`hmac_digest`."""
    return hmac.compare_digest(hmac_digest(key, data), tag)
