"""Deterministic simulation environment.

The paper evaluates SCFS against real commercial clouds; this reproduction
replaces wall-clock time and real networks by a discrete simulated clock and
per-provider latency models.  Every remote access (cloud storage request,
coordination service operation) *charges* its latency to the shared
:class:`SimClock`, so benchmarks measure deterministic simulated seconds
instead of noisy wall-clock time.
"""

from repro.simenv.clock import SimClock
from repro.simenv.latency import LatencyModel, NetworkProfile
from repro.simenv.failures import FailureSchedule, FaultKind, FaultWindow
from repro.simenv.environment import Simulation

__all__ = [
    "SimClock",
    "LatencyModel",
    "NetworkProfile",
    "FailureSchedule",
    "FaultKind",
    "FaultWindow",
    "Simulation",
]
