"""Failure injection for simulated cloud providers and coordination replicas.

The cloud-of-clouds backend of SCFS exists precisely because individual
providers suffer outages, data corruption and even malicious (Byzantine)
behaviour.  :class:`FailureSchedule` lets tests and benchmarks declare *when*
and *how* a given provider misbehaves, keyed on simulated time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """The ways a simulated provider can misbehave."""

    #: Requests raise :class:`~repro.common.errors.CloudUnavailableError`.
    UNAVAILABLE = "unavailable"
    #: Reads return corrupted payloads (flipped bytes); writes appear to
    #: succeed but store corrupted data.
    CORRUPTION = "corruption"
    #: Reads return stale or attacker-chosen data and metadata: the provider
    #: behaves arbitrarily (Byzantine).
    BYZANTINE = "byzantine"
    #: Writes are silently dropped (acknowledged but not stored).
    DROP_WRITES = "drop_writes"
    #: The provider answers correctly but slowly: every request's latency is
    #: multiplied by the window's ``factor`` (a gray failure / straggler).
    DEGRADED = "degraded"


@dataclass(frozen=True)
class FaultWindow:
    """A single fault active on ``[start, end)`` of simulated time.

    ``factor`` is the latency multiplier of a :attr:`FaultKind.DEGRADED`
    window (ignored by the other fault kinds).
    """

    kind: FaultKind
    start: float = 0.0
    end: float = float("inf")
    factor: float = 1.0

    def active_at(self, now: float) -> bool:
        """True if this fault window covers simulated instant ``now``."""
        return self.start <= now < self.end


@dataclass
class FailureSchedule:
    """Set of fault windows affecting one component (e.g. one cloud provider)."""

    windows: list[FaultWindow] = field(default_factory=list)

    def add(self, kind: FaultKind, start: float = 0.0, end: float = float("inf"),
            factor: float = 1.0) -> None:
        """Schedule ``kind`` to be active on ``[start, end)``.

        ``factor`` sets the latency multiplier of a
        :attr:`FaultKind.DEGRADED` window; other kinds ignore it.
        """
        if kind is FaultKind.DEGRADED and factor <= 0:
            raise ValueError("a DEGRADED window needs a positive latency factor")
        self.windows.append(FaultWindow(kind, start, end, factor))

    def clear(self) -> None:
        """Remove all scheduled faults."""
        self.windows.clear()

    def active(self, now: float) -> set[FaultKind]:
        """Return the set of fault kinds active at simulated time ``now``."""
        return {w.kind for w in self.windows if w.active_at(now)}

    def is_active(self, kind: FaultKind, now: float) -> bool:
        """True if ``kind`` is active at ``now``."""
        return any(w.kind is kind and w.active_at(now) for w in self.windows)

    def degradation(self, now: float) -> float:
        """Combined latency multiplier of the DEGRADED windows active at ``now``.

        Returns 1.0 when none is active; overlapping windows compound.
        """
        factor = 1.0
        for window in self.windows:
            if window.kind is FaultKind.DEGRADED and window.active_at(now):
                factor *= window.factor
        return factor
