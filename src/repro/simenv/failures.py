"""Failure injection for simulated cloud providers and coordination replicas.

The cloud-of-clouds backend of SCFS exists precisely because individual
providers suffer outages, data corruption and even malicious (Byzantine)
behaviour.  :class:`FailureSchedule` lets tests and benchmarks declare *when*
and *how* a given provider misbehaves, keyed on simulated time.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """The ways a simulated provider can misbehave."""

    #: Requests raise :class:`~repro.common.errors.CloudUnavailableError`.
    UNAVAILABLE = "unavailable"
    #: Reads return corrupted payloads (flipped bytes); writes appear to
    #: succeed but store corrupted data.
    CORRUPTION = "corruption"
    #: Reads return stale or attacker-chosen data and metadata: the provider
    #: behaves arbitrarily (Byzantine).
    BYZANTINE = "byzantine"
    #: Writes are silently dropped (acknowledged but not stored).
    DROP_WRITES = "drop_writes"
    #: The provider answers correctly but slowly: every request's latency is
    #: multiplied by the window's ``factor`` (a gray failure / straggler).
    DEGRADED = "degraded"


@dataclass(frozen=True)
class FaultWindow:
    """A single fault active on ``[start, end)`` of simulated time.

    ``factor`` is the latency multiplier of a :attr:`FaultKind.DEGRADED`
    window (ignored by the other fault kinds).
    """

    kind: FaultKind
    start: float = 0.0
    end: float = float("inf")
    factor: float = 1.0

    def active_at(self, now: float) -> bool:
        """True if this fault window covers simulated instant ``now``."""
        return self.start <= now < self.end


@dataclass
class FailureSchedule:
    """Set of fault windows affecting one component (e.g. one cloud provider)."""

    windows: list[FaultWindow] = field(default_factory=list)

    def add(self, kind: FaultKind, start: float = 0.0, end: float = math.inf,
            factor: float = 1.0) -> None:
        """Schedule ``kind`` to be active on ``[start, end)``.

        ``factor`` sets the latency multiplier of a
        :attr:`FaultKind.DEGRADED` window; other kinds ignore it.
        """
        if kind is FaultKind.DEGRADED and factor <= 0:
            raise ValueError("a DEGRADED window needs a positive latency factor")
        self.windows.append(FaultWindow(kind, start, end, factor))

    def add_outage(self, start: float, duration: float,
                   kind: FaultKind = FaultKind.UNAVAILABLE, factor: float = 1.0) -> None:
        """Schedule a bounded outage: ``kind`` active on ``[start, start+duration)``.

        Convenience for the outage schedules swept by the quorum-latency
        benchmark: a crash outage (the default) raises on every request, a
        *hang* outage (``kind=FaultKind.DEGRADED`` with a large ``factor``)
        models a provider that stops answering within any reasonable timeout.
        """
        if duration <= 0:
            raise ValueError("an outage needs a positive duration")
        self.add(kind, start=start, end=start + duration, factor=factor)

    def clear(self) -> None:
        """Remove all scheduled faults."""
        self.windows.clear()

    def active(self, now: float) -> set[FaultKind]:
        """Return the set of fault kinds active at simulated time ``now``."""
        return {w.kind for w in self.windows if w.active_at(now)}

    def is_active(self, kind: FaultKind, now: float) -> bool:
        """True if ``kind`` is active at ``now``."""
        return any(w.kind is kind and w.active_at(now) for w in self.windows)

    def next_transition(self, now: float) -> float | None:
        """Next simulated instant after ``now`` at which the active set changes.

        Returns ``None`` when no further window starts or ends (benchmarks use
        this to pace an outage sweep without hard-coding window boundaries).
        """
        times = [
            t for w in self.windows for t in (w.start, w.end)
            if t > now and t != float("inf")
        ]
        return min(times, default=None)

    def degradation(self, now: float) -> float:
        """Combined latency multiplier of the DEGRADED windows active at ``now``.

        Returns 1.0 when none is active; overlapping windows compound.
        """
        factor = 1.0
        for window in self.windows:
            if window.kind is FaultKind.DEGRADED and window.active_at(now):
                factor *= window.factor
        return factor
