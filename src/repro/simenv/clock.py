"""Simulated monotonic clock.

All components of the reproduction share a single :class:`SimClock`.  Remote
operations advance it by their modelled latency; local operations advance it
by (much smaller) local latencies.  Benchmarks read elapsed simulated time via
:meth:`SimClock.now` or through the :class:`Stopwatch` helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


class SimClock:
    """A monotonically increasing simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)
        self._observers: list[Callable[[float, float], None]] = []

    def now(self) -> float:
        """Current simulated time in seconds since the simulation epoch."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (which must be non-negative).

        Returns the new time.  Registered observers are notified with the old
        and new time, which the non-blocking SCFS mode uses to complete
        background uploads whose finish time has been reached.
        """
        if seconds < 0:
            raise ValueError(f"cannot move simulated time backwards ({seconds})")
        if seconds == 0:
            return self._now
        old = self._now
        self._now = old + seconds
        for observer in list(self._observers):
            observer(old, self._now)
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Advance the clock to ``deadline``.

        ``deadline == now`` is a no-op; a deadline in the past raises
        :class:`ValueError` — simulated time is monotonic, and a backwards
        deadline always indicates a scheduling bug in the caller (it used to
        be silently ignored, which hid exactly those bugs).
        """
        if deadline < self._now:
            raise ValueError(
                f"cannot move simulated time backwards (now={self._now}, deadline={deadline})"
            )
        if deadline > self._now:
            self.advance(deadline - self._now)
        return self._now

    def subscribe(self, observer: Callable[[float, float], None]) -> None:
        """Register a callback invoked as ``observer(old_time, new_time)``."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[float, float], None]) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch started at the current simulated time."""
        return Stopwatch(self)


@dataclass
class Stopwatch:
    """Measures elapsed simulated time between construction and :meth:`elapsed`."""

    clock: SimClock
    start: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.start is None:
            self.start = self.clock.now()

    def elapsed(self) -> float:
        """Simulated seconds elapsed since the stopwatch was created/reset."""
        return self.clock.now() - self.start

    def reset(self) -> None:
        """Restart the stopwatch at the current simulated time."""
        self.start = self.clock.now()
