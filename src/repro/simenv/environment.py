"""The :class:`Simulation` container shared by every simulated component.

A ``Simulation`` owns the simulated clock, a seeded random generator and a
queue of *deferred tasks*.  Deferred tasks model the background activity that
the real SCFS performs in separate threads: background uploads in the
non-blocking mode and the garbage-collector thread.  A task scheduled for
simulated time *t* runs as soon as the clock reaches or passes *t* (either via
an explicit :meth:`Simulation.run_until` or as a side effect of another
operation advancing the clock).
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simenv.clock import SimClock


def derive_rng(seed: int, label: str) -> random.Random:
    """Derive an independent, reproducible RNG stream from ``(seed, label)``.

    Forked streams decouple unrelated consumers of randomness: workload
    generation, fault-schedule generation and latency jitter each get their own
    stream, so adding a draw to one never perturbs the others — the property
    the scenario engine's seed-replay guarantee rests on.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(order=True)
class _ScheduledTask:
    when: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class TaskHandle:
    """Handle returned by :meth:`Simulation.schedule`; allows cancellation."""

    def __init__(self, task: _ScheduledTask):
        self._task = task

    @property
    def when(self) -> float:
        """Simulated time at which the task is due."""
        return self._task.when

    @property
    def name(self) -> str:
        """Human-readable task name (used in debugging and tests)."""
        return self._task.name

    def cancel(self) -> None:
        """Prevent the task from running if it has not run yet."""
        self._task.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._task.cancelled


class Simulation:
    """Deterministic simulation environment.

    Parameters
    ----------
    seed:
        Seed for the random generator used for latency jitter and workload
        generation.  Two simulations created with the same seed and subjected
        to the same operations produce identical traces.
    start_time:
        Initial simulated time (seconds).
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0):
        self.clock = SimClock(start_time)
        self.rng = random.Random(seed)
        self.seed = seed
        self._queue: list[_ScheduledTask] = []
        self._seq = itertools.count()
        self._id_counter = itertools.count()
        self._draining = False
        self.clock.subscribe(self._on_clock_advanced)

    # -- determinism helpers -------------------------------------------------

    def fork_rng(self, label: str) -> random.Random:
        """Return an independent RNG stream derived from this simulation's seed.

        Same seed + same label ⇒ same stream, regardless of how much the main
        ``rng`` has been consumed (see :func:`derive_rng`).
        """
        return derive_rng(self.seed, label)

    def fresh_id(self, prefix: str = "obj") -> str:
        """Return an identifier unique within this simulation.

        Unlike the process-global :func:`repro.common.types.fresh_id`, the
        counter restarts with every :class:`Simulation`, so two same-seed runs
        in one process mint identical ids — a prerequisite for byte-identical
        scenario traces (file ids end up in cloud keys and trace events).
        """
        return f"{prefix}-{next(self._id_counter):08d}"

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now()

    def advance(self, seconds: float) -> float:
        """Advance simulated time, running any deferred task that becomes due."""
        return self.clock.advance(seconds)

    # -- deferred tasks -----------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> TaskHandle:
        """Schedule ``callback`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule a task in the past")
        task = _ScheduledTask(self.clock.now() + delay, next(self._seq), callback, name)
        heapq.heappush(self._queue, task)
        return TaskHandle(task)

    def schedule_at(self, when: float, callback: Callable[[], Any], name: str = "") -> TaskHandle:
        """Schedule ``callback`` for absolute simulated time ``when``."""
        return self.schedule(max(0.0, when - self.clock.now()), callback, name)

    def pending_tasks(self) -> int:
        """Number of scheduled-but-not-yet-run (and not cancelled) tasks."""
        return sum(1 for t in self._queue if not t.cancelled)

    def run_until(self, deadline: float) -> None:
        """Advance the clock to ``deadline``, executing all tasks due on the way.

        The clock stops at each pending task's own deadline in turn (so every
        task observes *its* scheduled time, not ``deadline``), then settles at
        ``deadline``.  A deadline in the past raises :class:`ValueError` (it
        used to be silently skipped, together with any task due before it).
        """
        if deadline < self.clock.now():
            raise ValueError(
                f"cannot run_until a past deadline (now={self.clock.now()}, "
                f"deadline={deadline})"
            )
        guard = 0
        while True:
            self._run_due_tasks()
            head = self._next_live_task()
            if head is None or head.when > deadline:
                break
            self.clock.advance_to(head.when)
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - requires a task storm
                raise RuntimeError("run_until did not converge (task storm?)")
        self.clock.advance_to(deadline)

    def step(self) -> bool:
        """Advance to the next pending event and run everything due there.

        The heap-scheduler primitive: pops the earliest live task (deterministic
        ``(when, seq)`` order), advances the clock *exactly* to its deadline and
        executes every task due at that instant — tasks observe their own
        scheduled time.  Returns ``False`` when no live task remains.
        """
        self._run_due_tasks()
        head = self._next_live_task()
        if head is None:
            return False
        self.clock.advance_to(head.when)
        self._run_due_tasks()
        return True

    def run_all(self, max_events: int | None = None) -> int:
        """Step through pending events until the queue is empty.

        Unlike :meth:`drain` — which jumps the clock to the *last* deadline in
        one coarse advance — ``run_all`` visits each event time in order, which
        is what gives event-driven agents true asynchronous interleaving.
        Returns the number of steps taken; ``max_events`` bounds runaway loops.
        """
        steps = 0
        while self.step():
            steps += 1
            if max_events is not None and steps >= max_events:
                raise RuntimeError(
                    f"run_all exceeded {max_events} events (task storm?)"
                )
        return steps

    def _next_live_task(self) -> _ScheduledTask | None:
        """Peek the earliest non-cancelled task (discarding cancelled heads)."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def drain(self, extra: float = 0.0) -> None:
        """Run every pending task by advancing time past the last deadline.

        ``extra`` additional seconds are added at the end, which benchmarks use
        to model an idle tail (e.g. waiting for background uploads to settle).
        """
        guard = 0
        while True:
            self._run_due_tasks()
            pending = [t for t in self._queue if not t.cancelled]
            if not pending:
                break
            last = max(t.when for t in pending)
            self.clock.advance_to(last)
            guard += 1
            if guard > 10_000:
                raise RuntimeError("simulation drain did not converge (task storm?)")
        if extra:
            self.clock.advance(extra)

    def _run_due_tasks(self) -> None:
        """Run tasks whose deadline is not in the future (without moving the clock)."""
        if self._draining:
            return
        self._draining = True
        try:
            while self._queue and self._queue[0].when <= self.clock.now():
                task = heapq.heappop(self._queue)
                if not task.cancelled:
                    task.callback()
        finally:
            self._draining = False

    # -- internal -----------------------------------------------------------

    def _on_clock_advanced(self, _old: float, new: float) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._queue and self._queue[0].when <= self.clock.now():
                task = heapq.heappop(self._queue)
                if task.cancelled:
                    continue
                task.callback()
        finally:
            self._draining = False
