"""Latency models for simulated remote services.

A remote operation's latency is modelled as::

    latency = base + payload_bytes / bandwidth  (+ seeded jitter)

which captures the two regimes that matter for SCFS: small metadata/lock
operations dominated by the round-trip ``base`` (the paper quotes 60-100 ms
per coordination-service access) and bulk object transfers dominated by the
bandwidth term (multi-second uploads of MB-sized files, §4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.units import MB


@dataclass(frozen=True)
class LatencyModel:
    """Latency of one class of operation against one remote service.

    Attributes
    ----------
    base:
        Fixed per-request latency in seconds (round trips, service overhead).
    bandwidth:
        Sustained transfer rate in bytes/second applied to the payload.
        ``None`` means the payload size does not affect latency.
    jitter:
        Maximum relative jitter; the sampled latency is multiplied by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]`` using the seeded RNG.
    """

    base: float
    bandwidth: float | None = None
    jitter: float = 0.0

    def expected(self, payload_bytes: int = 0) -> float:
        """Deterministic expected latency of one operation moving ``payload_bytes``.

        Unlike :meth:`sample` this never draws from an RNG, so latency
        *estimates* (background-upload scheduling, capacity planning) neither
        perturb the simulation's random stream nor silently drop the jitter
        term when no RNG is passed.
        """
        latency = self.base
        if self.bandwidth:
            latency += payload_bytes / self.bandwidth
        return max(latency, 0.0)

    def sample(self, payload_bytes: int = 0, rng: random.Random | None = None) -> float:
        """Return the latency in seconds of one operation moving ``payload_bytes``."""
        latency = self.expected(payload_bytes)
        if self.jitter and rng is not None:
            latency *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return max(latency, 0.0)

    def scaled(self, factor: float) -> "LatencyModel":
        """Return a copy with the base latency scaled by ``factor``."""
        return LatencyModel(self.base * factor, self.bandwidth, self.jitter)


@dataclass(frozen=True)
class NetworkProfile:
    """Bundle of latency models describing a client's view of one provider.

    The defaults are calibrated from the figures quoted in the paper:

    * coordination-service accesses take 60-100 ms (§4.2), so ``metadata_op``
      defaults to an 80 ms base;
    * uploading/downloading MB-sized files to a storage cloud takes seconds,
      so object transfers default to a 120 ms base plus a 4 MB/s (download)
      or 2.5 MB/s (upload) bandwidth term;
    * local disk and memory accesses are micro/milli-second scale (Table 1).
    """

    name: str = "default"
    object_get: LatencyModel = LatencyModel(base=0.120, bandwidth=4.0 * MB)
    object_put: LatencyModel = LatencyModel(base=0.140, bandwidth=2.5 * MB)
    object_delete: LatencyModel = LatencyModel(base=0.080)
    object_list: LatencyModel = LatencyModel(base=0.200)
    metadata_op: LatencyModel = LatencyModel(base=0.080)
    propagation_delay: float = 1.0

    def with_jitter(self, jitter: float) -> "NetworkProfile":
        """Return a copy of this profile with the given relative jitter applied."""
        return NetworkProfile(
            name=self.name,
            object_get=LatencyModel(self.object_get.base, self.object_get.bandwidth, jitter),
            object_put=LatencyModel(self.object_put.base, self.object_put.bandwidth, jitter),
            object_delete=LatencyModel(self.object_delete.base, self.object_delete.bandwidth, jitter),
            object_list=LatencyModel(self.object_list.base, self.object_list.bandwidth, jitter),
            metadata_op=LatencyModel(self.metadata_op.base, self.metadata_op.bandwidth, jitter),
            propagation_delay=self.propagation_delay,
        )


#: Latency of an access served from the in-memory cache (Table 1, level 0).
MEMORY_LATENCY = LatencyModel(base=2e-6)

#: Latency of an access served from the local disk cache (Table 1, level 1).
DISK_LATENCY = LatencyModel(base=2e-3, bandwidth=120.0 * MB)

#: Overhead of crossing the FUSE-J user-space file system boundary.
FUSE_OVERHEAD = LatencyModel(base=5e-5)
