"""Transactional commit layer: multi-file atomicity over the SCFS anchor."""

from repro.transactions.manager import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    TXN_PREFIX,
    ReadRecord,
    Transaction,
    TransactionManager,
)

__all__ = [
    "ABORTED",
    "ACTIVE",
    "COMMITTED",
    "TXN_PREFIX",
    "ReadRecord",
    "Transaction",
    "TransactionManager",
]
