"""Multi-file transactions over the SCFS consistency anchor.

SCFS (§2.4) gives per-file consistency-on-close; the sync workloads of the
paper's Figure 8 imply *multi-file* atomicity — rename trees, batched commits
— that plain close() cannot provide.  This layer adds it on top of the
existing primitives, following the intent-record pattern of leaderless
BFT-transaction designs (Basil, arXiv:2109.12443):

1. **Optimistic execution** — :meth:`Transaction.read` records the
   ``(file_id, data_version, digest)`` it served; :meth:`Transaction.write`
   only stages bytes locally.  Nothing is visible to other agents yet.
2. **Commit** (:meth:`TransactionManager.commit`) — take the write locks of
   the *union* of the read and write sets in deterministic (lock-name) order,
   re-validate every read against the authoritative anchor under those locks,
   then write an **intent record** (``txn:<id>``) through the coordination
   service, upload the new data versions to the cloud(s), and anchor each
   file with a **per-entry version CAS**
   (:meth:`~repro.core.metadata_service.MetadataService.update_cas`).  The
   intent flips to ``committed`` only after every CAS succeeded; the locks
   are released last.
3. **Abort/retry** — any conflict (lock held, stale read, lost lease, CAS
   mismatch) raises :class:`~repro.common.errors.TransactionConflictError`;
   :meth:`TransactionManager.run` re-executes the whole transaction body with
   bounded exponential backoff before giving up with
   :class:`~repro.common.errors.TransactionAbortedError`.

The locks serialize commits, the validation makes the serialization order
match the reads, and the CAS is defence in depth against lock-lease expiry: a
usurper that stole an expired lock bumps the entry version, so the original
holder's CAS fails cleanly instead of forking the version history.  Aborts
before the intent record leave zero visible state (uploaded-but-unanchored
blocks are invisible and garbage-collectable).

The trace events (``txn_begin`` / ``txn_commit`` / ``txn_abort``, plus the
per-file ``upload``/``commit`` events tagged with the transaction id) are the
raw material of the history-based serializability checker in
:mod:`repro.scenarios.invariants`.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.common.errors import (
    ConflictError,
    FileNotFoundErrorFS,
    IsADirectoryErrorFS,
    LockHeldError,
    TransactionAbortedError,
    TransactionConflictError,
    TransactionError,
)
from repro.core.metadata import FileMetadata, normalize_path
from repro.crypto.hashing import content_digest

if TYPE_CHECKING:
    from repro.core.agent import SCFSAgent

#: One planned write: ``(path, entry_version, new_metadata, data)``.
WritePlan = list[tuple[str, int, FileMetadata, bytes]]

#: Prefix of transaction intent records in the coordination service.
TXN_PREFIX = "txn:"

#: Lifecycle states of a transaction (mirrored in the intent record).
ACTIVE, COMMITTED, ABORTED = "active", "committed", "aborted"


@dataclass
class ReadRecord:
    """What one transactional read observed (the validation token)."""

    path: str
    file_id: str
    version: int
    digest: str


class Transaction:
    """One multi-file transaction: staged writes plus a validated read set.

    Obtained from :meth:`TransactionManager.begin` (or the agent/file-system
    façades).  Reads are served from the authoritative anchor and recorded;
    writes stay local until :meth:`commit`.  A transaction is single-use:
    after commit or abort it refuses further operations.
    """

    def __init__(self, manager: "TransactionManager", txn_id: str) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.status = ACTIVE
        self.began = manager.agent.sim.now()
        self.attempts = 0
        self._reads: dict[str, ReadRecord] = {}
        self._read_data: dict[str, bytes] = {}
        self._writes: dict[str, bytes] = {}
        #: ``[path, file_id, version, digest]`` of each anchored write, filled
        #: by the commit (the write set as the serializability checker sees it).
        self._committed_writes: list[list[Any]] = []

    # ------------------------------------------------------------- operations

    def _require_active(self) -> None:
        if self.status != ACTIVE:
            raise TransactionError(f"transaction {self.txn_id} is {self.status}")

    def read(self, path: str) -> bytes:
        """Read ``path`` within this transaction (repeatable, reads-your-writes)."""
        self._require_active()
        path = normalize_path(path)
        if path in self._writes:
            return self._writes[path]
        if path in self._read_data:
            return self._read_data[path]
        agent = self.manager.agent
        # A pending non-blocking close of this agent must land first: its
        # version is newer than anything the anchor knows, and basing the read
        # set on the pre-upload state would validate against a version this
        # very agent is about to replace.
        agent.flush_pending(path)
        meta = agent.metadata.get(path, use_cache=False)
        if meta.is_directory:
            raise IsADirectoryErrorFS(f"is a directory: {path}")
        data = b""
        if meta.digest:
            data = self.manager.agent.storage.read_version(
                meta.file_id, meta.digest, meta.size).data
        self._reads[path] = ReadRecord(path=path, file_id=meta.file_id,
                                       version=meta.data_version, digest=meta.digest)
        self._read_data[path] = data
        return data

    def write(self, path: str, data: bytes) -> None:
        """Stage ``data`` as the new content of ``path`` (visible at commit only).

        The target must already exist at commit time — transactions update
        files, the namespace operations (create/unlink/rename) stay per-file.
        """
        self._require_active()
        self._writes[normalize_path(path)] = bytes(data)

    @property
    def read_set(self) -> list[ReadRecord]:
        """The recorded reads (paths outside the write set keep their record)."""
        return [self._reads[p] for p in sorted(self._reads)]

    @property
    def write_set(self) -> list[str]:
        """Sorted paths staged for writing."""
        return sorted(self._writes)

    # -------------------------------------------------------------- lifecycle

    def commit(self) -> None:
        """One commit attempt; raises ``TransactionConflictError`` on conflict.

        On conflict the transaction is aborted (it cannot be re-committed) —
        use :meth:`TransactionManager.run` for the retrying form.
        """
        self._require_active()
        self.manager.commit(self)

    def abort(self, reason: str = "aborted by caller") -> None:
        """Drop every staged write; nothing becomes visible (no-op if finished)."""
        if self.status == ACTIVE:
            self.manager._finish_abort(self, reason)


class TransactionManager:
    """Transactional commit layer of one agent (``agent.transactions``)."""

    def __init__(self, agent: "SCFSAgent") -> None:
        self.agent = agent
        self.config = agent.config.transactions

    # ------------------------------------------------------------------ begin

    def begin(self) -> Transaction:
        """Start a transaction (emits ``txn_begin``)."""
        txn = Transaction(self, self.agent.sim.fresh_id("txn"))
        self.agent._emit("txn_begin", txn=txn.txn_id)
        return txn

    def run(self, body: Callable[[Transaction], Any]) -> Any:
        """Execute ``body(txn)`` and commit, retrying with bounded backoff.

        The whole body re-executes on conflict (its reads must re-observe the
        anchor), up to ``config.max_attempts`` times; then
        :class:`TransactionAbortedError` carries the last conflict.
        """
        backoff = self.config.backoff
        last: TransactionConflictError | None = None
        for attempt in range(self.config.max_attempts):
            txn = self.begin()
            txn.attempts = attempt + 1
            try:
                result = body(txn)
                txn.commit()
                return result
            except TransactionConflictError as exc:
                last = exc
                txn.abort(reason=str(exc))
                if attempt < self.config.max_attempts - 1:
                    self.agent.sim.advance(backoff)
                    backoff = min(backoff * self.config.backoff_factor,
                                  self.config.backoff_max)
            except BaseException:
                txn.abort(reason="body raised")
                raise
        raise TransactionAbortedError(
            f"transaction gave up after {self.config.max_attempts} attempts: {last}"
        ) from last

    # ----------------------------------------------------------------- commit

    def commit(self, txn: Transaction) -> None:
        """One commit attempt of ``txn`` (see the module docstring protocol)."""
        if not txn._reads and not txn._writes:
            txn.status = COMMITTED
            self._emit_commit(txn)
            return
        try:
            self._commit_locked(txn)
        except TransactionConflictError as exc:
            self._finish_abort(txn, str(exc))
            raise
        except LockHeldError as exc:
            self._finish_abort(txn, str(exc))
            raise TransactionConflictError(str(exc)) from exc

    def _commit_locked(self, txn: Transaction) -> None:
        agent = self.agent
        paths = sorted(set(txn._reads) | set(txn._writes))
        for path in paths:
            agent.flush_pending(path)
        current = self._resolve(txn, paths)
        # Strict two-phase locking over the read∪write union, in global
        # lock-name order (the names are stable across renames, so every
        # committer sorts identically — no deadlock).
        locked: list[FileMetadata] = []
        try:
            for path in sorted(paths, key=lambda p: agent.locks.lock_name(current[p][0])):
                agent.locks.acquire(current[path][0])
                locked.append(current[path][0])
            # Validation runs under the locks: competing writers are now
            # excluded, so what we re-read here is what the CAS will see.
            current = self._resolve(txn, paths)
            self._validate(txn, current)
            for meta in locked:
                if not agent.locks.still_held(meta):
                    raise TransactionConflictError(
                        f"lock lease on {meta.path} expired during commit")
            if txn._writes:
                self._anchor_writes(txn, current)
            txn.status = COMMITTED
            self._emit_commit(txn)
        finally:
            for meta in reversed(locked):
                agent.locks.release(meta)

    def _resolve(self, txn: Transaction,
                 paths: list[str]) -> dict[str, tuple[FileMetadata, int]]:
        """Authoritative ``path -> (metadata, entry_version)`` for the lock/CAS set."""
        current: dict[str, tuple[FileMetadata, int]] = {}
        for path in paths:
            pair = self.agent.metadata.lookup_versioned(path)
            if pair is None or pair[0].deleted:
                if path in txn._writes and path not in txn._reads:
                    raise FileNotFoundErrorFS(f"no such file: {path}")
                raise TransactionConflictError(f"{path} disappeared mid-transaction")
            if pair[0].is_directory:
                raise IsADirectoryErrorFS(f"is a directory: {path}")
            current[path] = pair
        return current

    def _validate(self, txn: Transaction,
                  current: dict[str, tuple[FileMetadata, int]]) -> None:
        for path, record in txn._reads.items():
            meta = current[path][0]
            if (meta.file_id != record.file_id
                    or meta.data_version != record.version
                    or meta.digest != record.digest):
                raise TransactionConflictError(
                    f"stale read of {path}: saw version {record.version}, "
                    f"anchor has {meta.data_version}")

    def _anchor_writes(self, txn: Transaction,
                       current: dict[str, tuple[FileMetadata, int]]) -> None:
        agent = self.agent
        now = agent.sim.now()
        plan: WritePlan = []
        for path in sorted(txn._writes):
            meta, entry_version = current[path]
            data = txn._writes[path]
            new_meta = meta.copy()
            new_meta.digest = content_digest(data)
            new_meta.size = len(data)
            new_meta.modified_at = now
            new_meta.data_version = meta.data_version + 1
            plan.append((path, entry_version, new_meta, data))
        self._put_intent(txn, "pending", plan, expected_version=None)
        for path, _entry_version, new_meta, data in plan:
            ref = agent.storage.push_to_cloud(new_meta.file_id, data,
                                              min_version=new_meta.data_version)
            new_meta.digest, new_meta.size = ref.digest, ref.size
            agent._emit("upload", path=path, file_id=new_meta.file_id,
                        digest=ref.digest, version=new_meta.data_version,
                        background=False, txn=txn.txn_id)
            # A version written by a grantee must stay readable by the owner
            # and the other grantees (same as the plain close paths).
            agent._propagate_cloud_acls(new_meta)
        for path, entry_version, new_meta, _data in plan:
            try:
                agent.metadata.update_cas(new_meta, expected_version=entry_version)
            except ConflictError as exc:
                # Unreachable while the locks hold (validated entry versions
                # cannot move), so reaching it means the lease protection
                # failed — record the abort loudly; the serializability
                # checker flags any version this attempt already anchored.
                self._put_intent(txn, "aborted", plan, expected_version=1)
                raise TransactionConflictError(
                    f"version CAS failed on {path}: {exc}") from exc
            agent._emit("commit", path=path, file_id=new_meta.file_id,
                        digest=new_meta.digest, version=new_meta.data_version,
                        background=False, txn=txn.txn_id)
            txn._committed_writes.append(
                [path, new_meta.file_id, new_meta.data_version, new_meta.digest])
        self._put_intent(txn, "committed", plan, expected_version=1)
        agent.gc.maybe_schedule()

    def _put_intent(self, txn: Transaction, status: str, plan: WritePlan,
                    expected_version: int | None) -> None:
        """Write/flip the intent record ``txn:<id>`` through the coordination service."""
        agent = self.agent
        payload = json.dumps({
            "txn": txn.txn_id,
            "writer": agent.principal.name,
            "status": status,
            "files": [[path, meta.file_id, meta.data_version - 1,
                       meta.data_version, meta.digest]
                      for path, _v, meta, _d in plan],
        }, sort_keys=True).encode()
        agent.coordination.put(TXN_PREFIX + txn.txn_id, payload, agent.session,
                               expected_version=expected_version)

    def intent_record(self, txn_id: str) -> dict[str, Any] | None:
        """Decode the intent record of ``txn_id`` (None when absent)."""
        from repro.common.errors import TupleNotFoundError

        try:
            entry = self.agent.coordination.get(TXN_PREFIX + txn_id, self.agent.session)
        except TupleNotFoundError:
            return None
        record: dict[str, Any] = json.loads(entry.value.decode())
        return record

    # ------------------------------------------------------------------ abort

    def _finish_abort(self, txn: Transaction, reason: str) -> None:
        txn.status = ABORTED
        self.agent._emit(
            "txn_abort", txn=txn.txn_id, reason=reason[:200],
            reads=[[r.path, r.file_id, r.version] for r in txn.read_set],
            writes=[[p] for p in txn.write_set])

    def _emit_commit(self, txn: Transaction) -> None:
        self.agent._emit(
            "txn_commit", txn=txn.txn_id, began=txn.began, attempts=txn.attempts,
            reads=[[r.path, r.file_id, r.version] for r in txn.read_set],
            writes=list(txn._committed_writes))

    # ------------------------------------------------------------ rename_tree

    def rename_tree(self, old_path: str, new_path: str) -> None:
        """Atomically rename ``old_path`` (a file or a whole directory tree).

        Every *file* under the tree is locked first (lock names are keyed by
        file id, so they survive the rename), an intent record marks the
        operation, and the namespace move itself is the coordination
        service's one-round-trip prefix rewrite.  Concurrent closes of the
        moved files are excluded by the locks, so no background commit can
        resurrect the old path half-way through.
        """
        agent = self.agent
        old_path, new_path = normalize_path(old_path), normalize_path(new_path)
        meta = agent.metadata.get(old_path, use_cache=False)
        files = [m for m in self._walk(meta) if m.is_file]
        for m in files:
            agent.flush_pending(m.path)
        txn = self.begin()
        locked: list[FileMetadata] = []
        try:
            try:
                for m in sorted(files, key=agent.locks.lock_name):
                    agent.locks.acquire(m)
                    locked.append(m)
            except LockHeldError as exc:
                raise TransactionConflictError(str(exc)) from exc
            payload = json.dumps({
                "txn": txn.txn_id, "writer": agent.principal.name,
                "status": "pending", "rename": [old_path, new_path],
                "files": sorted(m.path for m in files),
            }, sort_keys=True).encode()
            agent.coordination.put(TXN_PREFIX + txn.txn_id, payload, agent.session)
            agent.rename(old_path, new_path)
            done = json.loads(payload.decode())
            done["status"] = "committed"
            agent.coordination.put(TXN_PREFIX + txn.txn_id,
                                   json.dumps(done, sort_keys=True).encode(),
                                   agent.session, expected_version=1)
            txn.status = COMMITTED
            agent._emit("txn_commit", txn=txn.txn_id, began=txn.began, attempts=1,
                        reads=[], writes=[], renamed_from=old_path,
                        renamed_to=new_path, files=len(files))
        except TransactionConflictError as exc:
            self._finish_abort(txn, str(exc))
            raise
        except BaseException as exc:
            self._finish_abort(txn, f"rename failed: {exc}")
            raise
        finally:
            for m in reversed(locked):
                agent.locks.release(m)

    def _walk(self, meta: FileMetadata) -> list[FileMetadata]:
        """``meta`` plus (for directories) every live descendant."""
        if not meta.is_directory:
            return [meta]
        out = [meta]
        stack = [meta.path]
        while stack:
            directory = stack.pop()
            for child in self.agent.metadata.list_children(directory):
                out.append(child)
                if child.is_directory:
                    stack.append(child.path)
        return out

    # ---------------------------------------------------------------- context

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """``with manager.transaction() as txn:`` — commit on success, abort on error."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            txn.abort(reason="body raised")
            raise
        txn.commit()
