"""The DepSky cloud-of-clouds read/write protocols.

A :class:`DepSkyClient` spreads each data-unit version across ``n = 3f+1``
clouds following Figure 6 of the SCFS paper:

1. generate a fresh random key;
2. encrypt the payload with it;
3. erasure-code the ciphertext into ``n`` blocks (any ``k = f+1`` rebuild it);
4. secret-share the key into ``n`` shares with threshold ``f+1``;
5. store, in cloud *i*, block *i* together with share *i*, then update that
   cloud's copy of the data-unit metadata (version history + block digests).

Reads gather metadata from a quorum, fetch blocks until ``k`` digests verify,
decode, reconstruct the key from the shares and decrypt.  Block fetches use
*preferred quorums*: the first ``k`` clouds hold the systematic blocks, whose
decode is a pure concatenation, so the client asks them first and falls back
to parity blocks (matrix decode via a cached inverse) only when a preferred
cloud fails; :class:`DepSkyReadResult.path` records which path served the
read.  The SCFS-specific
extension :meth:`DepSkyClient.read_matching` retrieves the version whose
*plaintext digest* equals a hash obtained from the consistency anchor, instead
of the latest version.

Latency model
-------------
The clouds of a CoC backend are created with ``charge_latency=False`` because
DepSky accesses them *in parallel*; the client charges the simulated clock the
latency of the slowest response within the quorum it waits for (per protocol
stage), which is how the real system's latency behaves.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.common.errors import (
    CloudError,
    IntegrityError,
    ObjectNotFoundError,
    QuorumNotReachedError,
)
from repro.common.types import Permission, Principal
from repro.clouds.object_store import ObjectStore
from repro.crypto.cipher import SymmetricCipher, generate_key
from repro.crypto.erasure import CodedBlock, ErasureCoder
from repro.crypto.hashing import content_digest
from repro.crypto.secret_sharing import SecretShare, combine_secret, split_secret
from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.simenv.environment import Simulation

#: Block object header: share x-coordinate (1 byte) + share length (2 bytes).
_BLOCK_HEADER = struct.Struct(">BH")


@dataclass
class DepSkyReadResult:
    """Result of a DepSky read: payload plus the version record it came from.

    ``path`` records which decode path served the read: ``"systematic"`` when
    the ``k`` systematic blocks were fetched from the preferred clouds (decode
    is a pure concatenation), ``"coded"`` when at least one parity block had
    to be fetched and a cached decode matrix was applied.  ``block_indices``
    lists the erasure-code rows actually used, in fetch order.
    """

    data: bytes
    record: VersionRecord
    clouds_used: list[str] = field(default_factory=list)
    path: str = "systematic"
    block_indices: tuple[int, ...] = ()


class DepSkyClient:
    """Client-side implementation of the DepSky protocols over ``n`` clouds.

    Parameters
    ----------
    sim:
        Shared simulation environment.
    clouds:
        The ``n`` object stores (one per provider), ordered; with the default
        ``f = 1`` there must be at least four.
    principal:
        The acting user (ACLs are enforced by each cloud individually).
    f:
        Number of tolerated faulty providers.
    encrypt:
        Encrypt payloads with a per-version random key (Figure 6).  Disabling
        encryption models DepSky-A (availability only).
    preferred_quorums:
        Store data blocks only on the first ``n - f`` clouds (metadata still
        goes everywhere).  This is the cost optimisation the paper assumes in
        Figure 11(c): for f=1 two clouds store half the file each and a third
        stores one extra coded block, i.e. ~50 % storage overhead.
    charge_latency:
        Charge quorum latencies to the simulated clock (disable only in unit
        tests that assert on pure protocol behaviour).
    """

    def __init__(
        self,
        sim: Simulation,
        clouds: list[ObjectStore],
        principal: Principal,
        f: int = 1,
        encrypt: bool = True,
        preferred_quorums: bool = True,
        charge_latency: bool = True,
    ):
        if f < 0:
            raise ValueError("f must be non-negative")
        if len(clouds) < 3 * f + 1:
            raise ValueError(f"DepSky with f={f} needs at least {3 * f + 1} clouds, got {len(clouds)}")
        self.sim = sim
        self.clouds = list(clouds)
        self.principal = principal
        self.f = f
        self.n = len(clouds)
        self.k = f + 1
        self.encrypt = encrypt
        self.preferred_quorums = preferred_quorums
        self.charge_latency = charge_latency
        self.coder = ErasureCoder(n=self.n, k=self.k)

    # ------------------------------------------------------------------ keys

    @staticmethod
    def _meta_key(unit_id: str) -> str:
        return f"depsky/{unit_id}/metadata"

    @staticmethod
    def _block_key(unit_id: str, version: int, index: int) -> str:
        return f"depsky/{unit_id}/v{version:08d}-b{index}"

    @staticmethod
    def unit_prefix(unit_id: str) -> str:
        """Cloud key prefix holding every object of the data unit."""
        return f"depsky/{unit_id}/"

    # --------------------------------------------------------------- latency

    def _charge_quorum(self, latencies: list[float], need: int) -> None:
        """Advance the clock by the ``need``-th fastest of parallel requests."""
        if not self.charge_latency or not latencies or need <= 0:
            return
        ordered = sorted(latencies)
        index = min(need, len(ordered)) - 1
        self.sim.advance(ordered[index])

    def _sample(self, cloud: ObjectStore, kind: str, payload: int) -> float:
        profile = getattr(cloud, "profile", None)
        if profile is None:
            return 0.0
        model = getattr(profile, kind)
        return model.sample(payload, self.sim.rng)

    # -------------------------------------------------------------- metadata

    def _read_metadata(self, unit_id: str) -> tuple[DataUnitMetadata | None, list[float]]:
        """Read every reachable cloud's metadata copy.

        Returns the *agreed* metadata — the copy containing the highest version
        number confirmed by at least ``f+1`` clouds (or any self-consistent
        copy when fewer exist yet) — plus the per-cloud latencies sampled.
        """
        copies: list[DataUnitMetadata] = []
        latencies: list[float] = []
        for cloud in self.clouds:
            try:
                blob = cloud.get(self._meta_key(unit_id), self.principal)
                latencies.append(self._sample(cloud, "object_get", len(blob)))
                copies.append(DataUnitMetadata.from_bytes(blob))
            except (CloudError, ValueError):
                latencies.append(self._sample(cloud, "object_get", 0))
                continue
        if not copies:
            return None, latencies
        # Count confirmations of each (version, digest) pair across clouds.
        confirmations: dict[tuple[int, str], int] = {}
        for copy in copies:
            for record in copy.versions:
                pair = (record.version, record.data_digest)
                confirmations[pair] = confirmations.get(pair, 0) + 1
        agreed_pairs = {pair for pair, count in confirmations.items() if count >= self.k}
        best: DataUnitMetadata | None = None
        best_version = -1
        for copy in copies:
            latest = copy.latest()
            if latest is None:
                continue
            pair = (latest.version, latest.data_digest)
            if (pair in agreed_pairs or len(copies) < self.k) and latest.version > best_version:
                best, best_version = copy, latest.version
        return best or copies[0], latencies

    # ------------------------------------------------------------------ write

    def write(self, unit_id: str, data: bytes) -> VersionRecord:
        """Write a new version of ``unit_id`` containing ``data``.

        Returns the version record (whose ``data_digest`` the SCFS metadata
        service will anchor in the coordination service).
        """
        metadata, meta_latencies = self._read_metadata(unit_id)
        self._charge_quorum(meta_latencies, self.k)
        if metadata is None:
            metadata = DataUnitMetadata(unit_id=unit_id)
        version = metadata.next_version()

        payload = data
        shares: list[SecretShare] | None = None
        if self.encrypt:
            key = generate_key(self.sim.rng)
            cipher = SymmetricCipher(key)
            payload = cipher.encrypt(data, self.sim.rng)
            shares = split_secret(key, self.n, self.k, self.sim.rng)

        blocks = self.coder.encode(payload)
        record = VersionRecord(
            version=version,
            data_digest=content_digest(data),
            size=len(data),
            block_digests=tuple(content_digest(b.payload) for b in blocks),
            created_at=self.sim.now(),
            writer=self.principal.name,
        )
        metadata.add(record)
        meta_blob = metadata.to_bytes()

        data_targets = self.n - self.f if self.preferred_quorums else self.n
        put_latencies: list[float] = []
        acks = 0
        for index, cloud in enumerate(self.clouds):
            if acks >= data_targets:
                # Preferred quorum reached: the remaining clouds receive no data
                # blocks, which is where the ~1.5x storage factor of Figure 11(c)
                # comes from.  A failed preferred cloud spills over to the next.
                break
            share = shares[index] if shares is not None else SecretShare(x=index + 1, data=b"")
            blob = _BLOCK_HEADER.pack(share.x, len(share.data)) + share.data + blocks[index].payload
            try:
                cloud.put(self._block_key(unit_id, version, index), blob, self.principal)
                put_latencies.append(self._sample(cloud, "object_put", len(blob)))
                acks += 1
            except CloudError:
                put_latencies.append(self._sample(cloud, "object_put", len(blob)))
                continue
        required_acks = min(self.n - self.f, data_targets)
        if acks < required_acks:
            raise QuorumNotReachedError(
                f"only {acks} clouds acknowledged the data blocks of {unit_id!r}",
                responses=acks, required=required_acks,
            )
        self._charge_quorum(put_latencies, required_acks)

        meta_latencies = []
        meta_acks = 0
        for cloud in self.clouds:
            try:
                cloud.put(self._meta_key(unit_id), meta_blob, self.principal)
                meta_latencies.append(self._sample(cloud, "object_put", len(meta_blob)))
                meta_acks += 1
            except CloudError:
                meta_latencies.append(self._sample(cloud, "object_put", len(meta_blob)))
                continue
        if meta_acks < self.n - self.f:
            raise QuorumNotReachedError(
                f"only {meta_acks} clouds acknowledged the metadata of {unit_id!r}",
                responses=meta_acks, required=self.n - self.f,
            )
        self._charge_quorum(meta_latencies, self.n - self.f)
        return record

    # ------------------------------------------------------------------- read

    def _fetch_one_block(self, unit_id: str, record: VersionRecord, index: int,
                         blocks: list[CodedBlock], shares: list[SecretShare],
                         used: list[str], latencies: list[float]) -> None:
        """Try to fetch and verify block ``index``; append to the accumulators."""
        cloud = self.clouds[index]
        key = self._block_key(unit_id, record.version, index)
        try:
            blob = cloud.get(key, self.principal)
        except CloudError:
            latencies.append(self._sample(cloud, "object_get", 0))
            return
        latencies.append(self._sample(cloud, "object_get", len(blob)))
        if len(blob) < _BLOCK_HEADER.size:
            return
        x, share_len = _BLOCK_HEADER.unpack_from(blob)
        share_data = blob[_BLOCK_HEADER.size:_BLOCK_HEADER.size + share_len]
        payload = blob[_BLOCK_HEADER.size + share_len:]
        if index < len(record.block_digests) and content_digest(payload) != record.block_digests[index]:
            # Corrupted or Byzantine answer — ignore this cloud's block.
            return
        blocks.append(CodedBlock(index=index, payload=payload))
        shares.append(SecretShare(x=x, data=share_data))
        used.append(cloud.name)

    def _fetch_blocks(self, unit_id: str, record: VersionRecord) -> tuple[list[CodedBlock], list[SecretShare], list[str], list[float]]:
        """Fetch ``k`` verified blocks, preferring the systematic clouds.

        Phase 1 asks the first ``k`` clouds, which hold the *systematic*
        blocks: if they all answer correctly the decode is a plain
        concatenation (the preferred-quorum read of the DepSky paper).  Only
        when some of them fail does phase 2 fall back to the clouds holding
        parity blocks, which cost a matrix multiplication to decode.
        """
        blocks: list[CodedBlock] = []
        shares: list[SecretShare] = []
        used: list[str] = []
        latencies: list[float] = []
        for index in range(self.k):
            self._fetch_one_block(unit_id, record, index, blocks, shares, used, latencies)
        if len(blocks) < self.k:
            for index in range(self.k, self.n):
                if len(blocks) >= self.k:
                    break
                self._fetch_one_block(unit_id, record, index, blocks, shares, used, latencies)
        return blocks, shares, used, latencies

    def _assemble(self, unit_id: str, record: VersionRecord) -> DepSkyReadResult:
        blocks, shares, used, latencies = self._fetch_blocks(unit_id, record)
        self._charge_quorum(latencies, self.k)
        if len(blocks) < self.k:
            raise QuorumNotReachedError(
                f"could not gather {self.k} valid blocks of {unit_id!r} v{record.version}",
                responses=len(blocks), required=self.k,
            )
        payload = self.coder.decode(blocks)
        if self.encrypt:
            key = combine_secret(shares, self.k)
            payload = SymmetricCipher(key).decrypt(payload)
        if content_digest(payload) != record.data_digest:
            raise IntegrityError(
                f"decoded payload of {unit_id!r} v{record.version} does not match its digest"
            )
        indices = tuple(b.index for b in blocks)
        path = "systematic" if all(i < self.k for i in indices) else "coded"
        return DepSkyReadResult(data=payload, record=record, clouds_used=used,
                                path=path, block_indices=indices)

    def read_latest(self, unit_id: str) -> DepSkyReadResult:
        """Read the most recent version of ``unit_id`` (classic DepSky read)."""
        metadata, latencies = self._read_metadata(unit_id)
        self._charge_quorum(latencies, self.k)
        if metadata is None or metadata.latest() is None:
            raise ObjectNotFoundError(f"data unit {unit_id!r} has no visible version")
        return self._assemble(unit_id, metadata.latest())

    def read_matching(self, unit_id: str, digest: str) -> DepSkyReadResult:
        """Read the version of ``unit_id`` whose plaintext digest is ``digest``.

        This is the operation added to DepSky for SCFS (§3.2): the digest comes
        from the consistency anchor, so a metadata copy containing it is
        self-verifying and a single copy suffices to locate the version.
        Raises :class:`ObjectNotFoundError` when no cloud has (yet) a metadata
        copy listing the requested digest — the caller retries, implementing
        the ``do ... while`` loop of Figure 3.
        """
        metadata, latencies = self._read_metadata(unit_id)
        self._charge_quorum(latencies, self.k)
        record = metadata.find_by_digest(digest) if metadata is not None else None
        if record is None:
            # Fall back to scanning every copy (a lagging majority may not list
            # the version yet while one up-to-date cloud already does).
            record = self._find_digest_any_copy(unit_id, digest)
        if record is None:
            raise ObjectNotFoundError(
                f"no cloud lists a version of {unit_id!r} with digest {digest[:12]}…"
            )
        return self._assemble(unit_id, record)

    def _find_digest_any_copy(self, unit_id: str, digest: str) -> VersionRecord | None:
        for cloud in self.clouds:
            try:
                blob = cloud.get(self._meta_key(unit_id), self.principal)
                copy = DataUnitMetadata.from_bytes(blob)
            except (CloudError, ValueError):
                continue
            record = copy.find_by_digest(digest)
            if record is not None:
                return record
        return None

    # ----------------------------------------------------------- maintenance

    def list_versions(self, unit_id: str) -> list[VersionRecord]:
        """Return the agreed version history of ``unit_id`` (empty if unknown)."""
        metadata, latencies = self._read_metadata(unit_id)
        self._charge_quorum(latencies, self.k)
        return list(metadata.versions) if metadata is not None else []

    def delete_version(self, unit_id: str, version: int) -> None:
        """Delete the blocks of one version from every cloud and update metadata.

        Used by the SCFS garbage collector (§2.5.3).
        """
        metadata, latencies = self._read_metadata(unit_id)
        self._charge_quorum(latencies, self.k)
        delete_latencies: list[float] = []
        for index, cloud in enumerate(self.clouds):
            try:
                cloud.delete(self._block_key(unit_id, version, index), self.principal)
            except CloudError:
                pass
            delete_latencies.append(self._sample(cloud, "object_delete", 0))
        self._charge_quorum(delete_latencies, self.n - self.f)
        if metadata is not None and metadata.remove_version(version):
            blob = metadata.to_bytes()
            put_latencies = []
            for cloud in self.clouds:
                try:
                    cloud.put(self._meta_key(unit_id), blob, self.principal)
                except CloudError:
                    pass
                put_latencies.append(self._sample(cloud, "object_put", len(blob)))
            self._charge_quorum(put_latencies, self.n - self.f)

    def destroy_unit(self, unit_id: str) -> None:
        """Remove every object of the data unit from every cloud."""
        prefix = self.unit_prefix(unit_id)
        for cloud in self.clouds:
            try:
                listing = cloud.list_keys(prefix, self.principal)
                for key in listing.keys:
                    cloud.delete(key, self.principal)
            except CloudError:
                continue

    def set_acl(self, unit_id: str, grantee: Principal, permission: Permission) -> None:
        """Grant ``permission`` on the whole data unit to ``grantee`` in every cloud.

        Uses one prefix (bucket-policy) grant per cloud so that future versions
        are covered too — the cloud-side half of SCFS's ``setfacl`` (§2.6).
        """
        latencies = []
        for cloud in self.clouds:
            canonical = grantee.canonical_id(cloud.name)
            set_policy = getattr(cloud, "set_bucket_policy", None)
            try:
                if set_policy is not None:
                    set_policy(self.unit_prefix(unit_id), canonical, permission, self.principal)
                else:  # pragma: no cover - only for exotic ObjectStore impls
                    for key in cloud.list_keys(self.unit_prefix(unit_id), self.principal).keys:
                        cloud.set_acl(key, canonical, permission, self.principal)
            except CloudError:
                pass
            latencies.append(self._sample(cloud, "metadata_op", 0))
        self._charge_quorum(latencies, self.n - self.f)

    def stored_bytes(self, unit_id: str) -> int:
        """Total bytes stored for ``unit_id`` across all clouds (cost analysis)."""
        total = 0
        for cloud in self.clouds:
            try:
                listing = cloud.list_keys(self.unit_prefix(unit_id), self.principal)
                total += listing.total_bytes
            except CloudError:
                continue
        return total
