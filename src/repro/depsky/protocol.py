"""The DepSky cloud-of-clouds read/write protocols.

A :class:`DepSkyClient` spreads each data-unit version across ``n = 3f+1``
clouds following Figure 6 of the SCFS paper:

1. generate a fresh random key;
2. encrypt the payload with it;
3. erasure-code the ciphertext into ``n`` blocks (any ``k = f+1`` rebuild it);
4. secret-share the key into ``n`` shares with threshold ``f+1``;
5. store, in cloud *i*, block *i* together with share *i*, then update that
   cloud's copy of the data-unit metadata (version history + block digests).

Reads gather metadata from a quorum, fetch blocks until ``k`` digests verify,
decode, reconstruct the key from the shares and decrypt.  Block fetches use
*preferred quorums*: the first ``k`` clouds hold the systematic blocks, whose
decode is a pure concatenation, so the client asks them first and falls back
to parity blocks (matrix decode via a cached inverse) only when a preferred
cloud fails; :class:`DepSkyReadResult.path` records which path served the
read.  The SCFS-specific
extension :meth:`DepSkyClient.read_matching` retrieves the version whose
*plaintext digest* equals a hash obtained from the consistency anchor, instead
of the latest version.

Latency model
-------------
The clouds of a CoC backend are created with ``charge_latency=False`` because
DepSky accesses them *in parallel*.  Every multi-cloud operation is executed
through the quorum dispatch engine
(:class:`~repro.clouds.dispatch.QuorumCall`), which models the parallel
requests on a virtual timeline and resolves when the *m*-th **successful**
response lands; the client then advances the simulated clock by exactly that
wait.  The stage semantics are:

* stage 0 dispatches at the call's start — the preferred/systematic clouds of
  a read, the ``n - f`` preferred clouds of a write;
* a fallback stage (parity clouds of a read, spill-over clouds of a write)
  dispatches at the *end of the round that triggered it* — the instant the
  previous round's last request resolved without satisfying the quorum — so
  degraded-mode operations are strictly slower than fault-free ones;
* failed, timed-out and Byzantine responses consume time but never occupy
  quorum slots;
* an optional :class:`~repro.clouds.dispatch.DispatchPolicy` adds per-request
  timeouts, bounded retries and *hedging*: dispatching the fallback stage
  ``hedge_delay`` seconds after the current stage started whenever the quorum
  has not been reached by then, which lets backup requests beat a DEGRADED
  straggler;
* an optional :class:`~repro.clouds.health.CloudHealthTracker` makes the
  client remember which providers are misbehaving: suspected clouds are
  demoted out of the primary stage (fallback clouds take their slots), probed
  in the background with exponential backoff, and restored on the first
  successful response — so repeated reads stop paying a downed provider's
  timeout on every call.

Each operation's :class:`~repro.clouds.dispatch.QuorumCallStats` (per-cloud
outcome, per-stage wait, winner set) is threaded into
:class:`DepSkyReadResult` and, through the storage backend, into the
benchmark reports.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import (
    CloudError,
    IntegrityError,
    ObjectNotFoundError,
    QuorumNotReachedError,
)
from repro.common.types import Permission, Principal
from repro.clouds.dispatch import (
    DispatchPolicy,
    InstantCoalescer,
    QuorumCall,
    QuorumCallStats,
    QuorumRequest,
)

#: Quorum ops with server-side effects: any of these changes what a
#: subsequent read quorum would return, so they expire the instant-coalescing
#: window (see :class:`~repro.clouds.dispatch.InstantCoalescer`).
_MUTATING_OPS = frozenset({"block_put", "meta_put", "block_delete", "acl"})
from repro.clouds.health import CloudHealthTracker, QuorumPlanner
from repro.clouds.object_store import ObjectStore
from repro.clouds.quorums import QuorumSystem, min_size as quorum_min_size
from repro.crypto.cipher import SymmetricCipher, generate_key
from repro.crypto.erasure import CodedBlock, ErasureCoder
from repro.crypto.hashing import content_digest
from repro.crypto.secret_sharing import SecretShare, combine_secret, split_secret
from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.simenv.environment import Simulation

#: Block object header: share x-coordinate (1 byte) + share length (2 bytes).
_BLOCK_HEADER = struct.Struct(">BH")


def block_blob_digest(share: "SecretShare", payload: bytes) -> str:
    """Digest of one stored block object — header ‖ share ‖ coded payload.

    The version record's ``block_digests`` cover the *whole* stored blob, not
    just the erasure-coded payload: the key share travels in the same object,
    and an unverified share lets a faulty cloud serve a perfectly valid block
    with a corrupted share, poisoning the reconstructed key (the decrypt then
    fails its authentication tag *after* the quorum already accepted the
    block).  Hashing the blob makes the share self-verifying, so a bad share
    fails the digest check and the fetch falls back to another cloud.
    """
    digest = hashlib.sha256()
    digest.update(_BLOCK_HEADER.pack(share.x, len(share.data)))
    digest.update(share.data)
    digest.update(payload)
    return digest.hexdigest()


@dataclass
class DepSkyReadResult:
    """Result of a DepSky read: payload plus the version record it came from.

    ``path`` records which decode path served the read: ``"systematic"`` when
    the ``k`` systematic blocks were fetched from the preferred clouds (decode
    is a pure concatenation), ``"coded"`` when at least one parity block had
    to be fetched and a cached decode matrix was applied.  ``block_indices``
    lists the erasure-code rows actually used, in row order.  ``stats`` and
    ``meta_stats`` carry the dispatch-engine statistics of the block-fetch and
    metadata-read quorum calls (per-cloud outcome, per-stage wait, winner
    set), which the benchmark reports aggregate into preferred-quorum hit
    rates and hedging effectiveness.
    """

    data: bytes
    record: VersionRecord
    clouds_used: list[str] = field(default_factory=list)
    path: str = "systematic"
    block_indices: tuple[int, ...] = ()
    stats: QuorumCallStats | None = None
    meta_stats: QuorumCallStats | None = None


class DepSkyClient:
    """Client-side implementation of the DepSky protocols over ``n`` clouds.

    Parameters
    ----------
    sim:
        Shared simulation environment.
    clouds:
        The ``n`` object stores (one per provider), ordered; with the default
        ``f = 1`` there must be at least four.
    principal:
        The acting user (ACLs are enforced by each cloud individually).
    f:
        Number of tolerated faulty providers.
    encrypt:
        Encrypt payloads with a per-version random key (Figure 6).  Disabling
        encryption models DepSky-A (availability only).
    preferred_quorums:
        Store data blocks only on the first ``n - f`` clouds (metadata still
        goes everywhere).  This is the cost optimisation the paper assumes in
        Figure 11(c): for f=1 two clouds store half the file each and a third
        stores one extra coded block, i.e. ~50 % storage overhead.
    charge_latency:
        Charge quorum latencies to the simulated clock (disable only in unit
        tests that assert on pure protocol behaviour).
    policy:
        Dispatch policy applied to every quorum call of this client —
        per-request timeout, bounded retries and hedged fallback dispatch.
        Defaults to plain staged dispatch (no timeouts, no hedging).
    health:
        Optional :class:`~repro.clouds.health.CloudHealthTracker`.  When set,
        every quorum call is re-planned around its suspect list (suspected
        clouds are demoted out of the primary stage and probed in the
        background) and every resolved request feeds the tracker.
    quorum:
        Optional :class:`~repro.clouds.quorums.QuorumSystem` replacing the
        uniform threshold counts: write acknowledgements complete when the
        responder set satisfies the system's *quorum* predicate, and the
        ``f + 1`` matching-digest checks of the metadata agreement generalize
        to the system's *certificate* predicate (a confirming set that cannot
        consist entirely of faulty providers).  ``None`` keeps the classic
        DepSky counts (``n - f`` / ``f + 1``) byte-identically.
    planner:
        Optional :class:`~repro.clouds.health.QuorumPlanner`.  When set, the
        metadata read and the block fetch pick their primary stage as the
        cheapest feasible quorum by expected cost × latency (the remaining
        clouds form the fallback stage); without it the stages keep the
        classic systematic-first ordering.
    """

    def __init__(
        self,
        sim: Simulation,
        clouds: list[ObjectStore],
        principal: Principal,
        f: int = 1,
        encrypt: bool = True,
        preferred_quorums: bool = True,
        charge_latency: bool = True,
        policy: DispatchPolicy | None = None,
        health: CloudHealthTracker | None = None,
        coalescer: InstantCoalescer | None = None,
        quorum: QuorumSystem | None = None,
        planner: QuorumPlanner | None = None,
    ):
        if f < 0:
            raise ValueError("f must be non-negative")
        if len(clouds) < 3 * f + 1:
            raise ValueError(f"DepSky with f={f} needs at least {3 * f + 1} clouds, got {len(clouds)}")
        if quorum is not None and set(quorum.universe) != {c.name for c in clouds}:
            raise ValueError(
                f"quorum system universe {sorted(quorum.universe)} does not "
                f"match the deployed clouds {sorted(c.name for c in clouds)}")
        self.sim = sim
        self.clouds = list(clouds)
        self.principal = principal
        self.f = f
        self.n = len(clouds)
        self.k = f + 1
        self.encrypt = encrypt
        self.preferred_quorums = preferred_quorums
        self.charge_latency = charge_latency
        self.policy = policy
        self.health = health
        self.quorum = quorum
        self.planner = planner
        #: Optional deployment-wide :class:`InstantCoalescer`: identical
        #: metadata read quorums issued in the same virtual instant (by this
        #: or any other client sharing the coalescer) are absorbed into the
        #: first call's result instead of re-dispatched.
        self.coalescer = coalescer
        self.coder = ErasureCoder(n=self.n, k=self.k)
        #: Last metadata this client successfully wrote, per unit, paired
        #: with its *knowledge floor* — the highest version number the client
        #: had seen when it wrote it.  The cloud metadata object is eventually
        #: consistent: re-reading it within the propagation window of our own
        #: put returns the *previous* history, and a read-modify-write from
        #: that stale copy would clobber the version we just committed (or
        #: resurrect records a delete already pruned).  Our own writes are
        #: trusted, so the cache gives this client read-your-writes on its
        #: metadata; a visible copy only wins when its latest version exceeds
        #: the floor (i.e. *another* client has written since).
        self._last_written: dict[str, tuple[int, DataUnitMetadata]] = {}
        #: Optional observer of every resolved quorum call, invoked as
        #: ``on_quorum(op, unit_id, stats)`` with ``op`` one of ``meta_read``,
        #: ``block_put``, ``meta_put``, ``block_get``, ``block_delete``,
        #: ``acl``.  The scenario engine's trace recorder taps in here to
        #: record per-cloud outcomes alongside the file-system events.
        self.on_quorum = None

    # ------------------------------------------------------------------ keys

    @staticmethod
    def _meta_key(unit_id: str) -> str:
        return f"depsky/{unit_id}/metadata"

    @staticmethod
    def _block_key(unit_id: str, version: int, index: int) -> str:
        return f"depsky/{unit_id}/v{version:08d}-b{index}"

    @staticmethod
    def unit_prefix(unit_id: str) -> str:
        """Cloud key prefix holding every object of the data unit."""
        return f"depsky/{unit_id}/"

    # --------------------------------------------------------------- dispatch

    def _charge(self, stats: QuorumCallStats) -> None:
        """Advance the clock by the simulated wait of one quorum call."""
        if self.charge_latency and stats.charged > 0:
            self.sim.advance(stats.charged)

    def _tap(self, op: str, unit_id: str, stats: QuorumCallStats) -> None:
        """Report one resolved quorum call to the attached observer (if any)."""
        if self.coalescer is not None and op in _MUTATING_OPS:
            # The sends of a quorum call execute against the simulated stores
            # during ``execute()``, so by the time the call is tapped the
            # mutation has happened: anything coalesced is stale.
            self.coalescer.invalidate()
        if self.on_quorum is not None:
            self.on_quorum(op, unit_id, stats)

    def _request_latency(self, cloud: ObjectStore, kind: str, payload: int) -> float:
        """Sample one request's latency against ``cloud`` (degradation-aware)."""
        sampler = getattr(cloud, "request_latency", None)
        if sampler is not None:
            return sampler(kind, payload)
        profile = getattr(cloud, "profile", None)
        if profile is None:
            return 0.0
        return getattr(profile, kind).sample(payload, self.sim.rng)

    def _call(self) -> QuorumCall:
        return QuorumCall(self.policy, health=self.health, now=self.sim.now())

    def _write_quorum(self):
        """Ack requirement of mutating calls: a quorum predicate, or the
        classic ``n - f`` count when no quorum system is configured."""
        return self.quorum.quorum() if self.quorum is not None else self.n - self.f

    def _certificate(self):
        """Confirmation requirement of the metadata agreement: a certificate
        predicate, or the classic ``f + 1`` count."""
        return self.quorum.certificate() if self.quorum is not None else self.k

    def _get_request(self, cloud: ObjectStore, key: str, parse) -> QuorumRequest:
        """Build a GET request whose response must ``parse`` to count as a success.

        ``parse(blob)`` returns the request value or raises a
        :class:`~repro.common.errors.CloudError` subclass (Byzantine or
        corrupted responses fail their integrity check and therefore consume
        time without occupying a quorum slot).  The sampled latency always
        reflects the bytes actually transferred: a corrupted 1 MB block costs
        its full download time even though it fails verification, while a
        request the cloud rejected outright only costs the round trip.
        """
        transferred = [0]

        def send():
            transferred[0] = 0
            blob = cloud.get(key, self.principal)
            transferred[0] = len(blob)
            return parse(blob), len(blob)

        def latency(_value):
            return self._request_latency(cloud, "object_get", transferred[0])

        return QuorumRequest(cloud=cloud.name, send=send, latency=latency)

    def _planned_clouds(self, kind: str, payload: int,
                        required) -> tuple[list[ObjectStore], list[ObjectStore]]:
        """Primary/fallback split of the clouds for one read-side quorum call.

        Without a :attr:`planner` every cloud sits in the primary stage (the
        classic behaviour).  With one, the primary stage is the cheapest
        feasible quorum by expected cost × latency and the remaining clouds
        form a fallback stage, dispatched only when the primary round cannot
        satisfy the predicate (or a hedge fires).
        """
        if self.planner is None:
            return list(self.clouds), []
        plan = self.planner.plan([c.name for c in self.clouds], required, kind, payload)
        by_name = {c.name: c for c in self.clouds}
        return ([by_name[name] for name in plan.primary],
                [by_name[name] for name in plan.fallback])

    def _put_request(self, cloud: ObjectStore, key: str, blob: bytes) -> QuorumRequest:
        def send():
            cloud.put(key, blob, self.principal)
            return True

        def latency(_value):
            return self._request_latency(cloud, "object_put", len(blob))

        return QuorumRequest(cloud=cloud.name, send=send, latency=latency, mutating=True)

    # -------------------------------------------------------------- metadata

    def _read_metadata(self, unit_id: str,
                       use_cached: bool = True) -> tuple[DataUnitMetadata | None, QuorumCallStats]:
        """Read the clouds' metadata copies through one quorum call.

        Returns the *agreed* metadata — the copy containing the highest version
        number confirmed by at least ``f+1`` clouds (or any self-consistent
        copy when fewer exist yet) — plus the call's dispatch statistics.  The
        charged wait is the ``k``-th successful response; late copies still
        participate in the agreement (they model responses that trickle in
        while the client already proceeds).

        ``use_cached`` merges this client's last *written* metadata when it is
        newer than anything visible (read-your-writes for the mutation paths:
        read-modify-writes must never roll the history back just because the
        clouds have not propagated our own put yet).  Pure read paths pass
        ``False``: they must reflect what the clouds actually serve.

        With a :attr:`coalescer` attached, a repeat of this read within the
        same virtual instant (same key and principal, no intervening
        mutation) is absorbed into the earlier call's result: it returns the
        identical agreement with zero-cost statistics instead of
        re-dispatching the quorum.
        """
        key = self._meta_key(unit_id)
        coalesce_key = None
        best: DataUnitMetadata | None = None
        best_version = -1
        stats: QuorumCallStats | None = None
        required = self._certificate()
        if self.coalescer is not None:
            # Keyed per principal: a cached agreement must never satisfy a
            # caller the clouds' access checks would have denied.
            coalesce_key = (self.principal.name, key)
            absorbed = self.coalescer.lookup(coalesce_key)
            if absorbed is not None:
                blob, best_version = absorbed
                best = DataUnitMetadata.from_bytes(blob) if blob is not None else None
                stats = self.coalescer.absorbed(quorum_min_size(required))
        if stats is None:

            def parse(blob: bytes) -> DataUnitMetadata:
                try:
                    return DataUnitMetadata.from_bytes(blob)
                except ValueError as exc:
                    raise IntegrityError(f"unparseable metadata copy of {unit_id!r}") from exc

            primary, fallback = self._planned_clouds("object_get", 0, required)
            call = self._call().stage([self._get_request(c, key, parse) for c in primary])
            if fallback:
                call.stage([self._get_request(c, key, parse) for c in fallback])
            stats = call.execute(required=required)
            self._tap("meta_read", unit_id, stats)
            copies = [trace.value[0] for trace in stats.successes]
            if copies:
                # Collect, per (version, digest) pair, the clouds confirming it.
                confirmations: dict[tuple[int, str], list[str]] = {}
                for trace in stats.successes:
                    for record in trace.value[0].versions:
                        pair = (record.version, record.data_digest)
                        confirmations.setdefault(pair, []).append(trace.cloud)
                if self.quorum is None:
                    # Classic DepSky: f + 1 matching copies certify a version.
                    agreed_pairs = {pair for pair, confirmed in confirmations.items()
                                    if len(confirmed) >= self.k}
                    # Fewer copies than any certificate: accept a self-consistent
                    # copy (a unit too young to have propagated everywhere).
                    scarce = len(copies) < self.k
                else:
                    # Generalized: a pair is authentic when its confirming set
                    # is a quorum-intersection certificate (cannot consist
                    # entirely of faulty providers).
                    agreed_pairs = {pair for pair, confirmed in confirmations.items()
                                    if self.quorum.certifies(confirmed)}
                    scarce = not self.quorum.certifies(
                        [trace.cloud for trace in stats.successes])
                for copy in copies:
                    latest = copy.latest()
                    if latest is None:
                        continue
                    pair = (latest.version, latest.data_digest)
                    if (pair in agreed_pairs or scarce) and latest.version > best_version:
                        best, best_version = copy, latest.version
                best = best or copies[0]
            if coalesce_key is not None:
                # Publish the *cloud-visible* agreement (pre read-your-writes
                # merge, which is per client) as serialized bytes: callers
                # mutate the metadata they receive, so every absorbed read
                # reconstructs its own private copy.
                self.coalescer.store(
                    coalesce_key,
                    (best.to_bytes() if best is not None else None, best_version),
                )
        entry = self._last_written.get(unit_id) if use_cached else None
        if entry is not None:
            floor, cached = entry
            if best_version <= floor:
                # Nothing visible is newer than what this client already
                # wrote (propagation lag, or no copy visible at all): trust
                # our own copy instead of rolling the history back.  A
                # visible latest beyond the floor means another client wrote
                # since, and the cloud copy wins.
                best = DataUnitMetadata.from_bytes(cached.to_bytes())
        return best, stats

    # ------------------------------------------------------------------ write

    def write(self, unit_id: str, data: bytes, min_version: int | None = None) -> VersionRecord:
        """Write a new version of ``unit_id`` containing ``data``.

        Returns the version record (whose ``data_digest`` the SCFS metadata
        service will anchor in the coordination service).

        ``min_version`` is a lower bound on the new version number, supplied
        by a caller holding a strongly consistent counter (SCFS passes the
        anchored ``data_version``).  It guards against the eventual
        consistency of the metadata object: two commits of the same unit
        within one propagation window would otherwise both read the stale
        history and mint the *same* version number — the second silently
        overwriting the first one's blocks and metadata record.
        """
        metadata, meta_stats = self._read_metadata(unit_id)
        self._charge(meta_stats)
        if metadata is None:
            metadata = DataUnitMetadata(unit_id=unit_id)
        version = metadata.next_version()
        if min_version is not None and min_version > version:
            version = min_version

        # Streaming zero-copy pipeline (Figure 6 steps 1–4): the cipher
        # encrypts straight into the erasure coder's framed buffer (the
        # ciphertext lands exactly where the systematic blocks live), parity
        # is computed stripe by stripe into the same buffer, and every
        # finished stripe feeds the per-cloud incremental digests while it is
        # still cache-hot — the payload is never re-materialised for
        # ``block_blob_digest`` and never copied between the pipeline stages.
        shares: list[SecretShare] | None = None
        if self.encrypt:
            key = generate_key(self.sim.rng)
            cipher = SymmetricCipher(key)
            payload_len = len(data) + cipher.overhead()
        else:
            cipher = None
            payload_len = len(data)
        buffer, payload_view = self.coder.frame_into(payload_len)
        if cipher is not None:
            cipher.encrypt_into(data, payload_view, self.sim.rng)
            shares = split_secret(key, self.n, self.k, self.sim.rng)
        else:
            payload_view[:] = np.frombuffer(data, dtype=np.uint8)

        def share_for(index: int) -> SecretShare:
            return shares[index] if shares is not None else SecretShare(x=index + 1, data=b"")

        # One incremental digest per cloud, seeded with header ‖ share; each
        # encoded stripe is folded into all of them as it is produced (the
        # digest definition is unchanged — see :func:`block_blob_digest`).
        hashers = []
        for i in range(self.n):
            share = share_for(i)
            hasher = hashlib.sha256()
            hasher.update(_BLOCK_HEADER.pack(share.x, len(share.data)))
            hasher.update(share.data)
            hashers.append(hasher)
        for stripe in self.coder.encode_stripes(buffer):
            for i in range(self.n):
                hashers[i].update(stripe.blocks[i])

        record = VersionRecord(
            version=version,
            data_digest=content_digest(data),
            size=len(data),
            block_digests=tuple(hasher.hexdigest() for hasher in hashers),
            created_at=self.sim.now(),
            writer=self.principal.name,
        )
        metadata.add(record)
        meta_blob = metadata.to_bytes()

        # Each cloud's blob is header ‖ share ‖ its row of the encode buffer.
        # Materialisation (the single copy that builds the stored ``bytes``)
        # is deferred to the engine's dispatch-time ``prepare`` hook: requests
        # of the spill-over stage that never dispatch never pay it, and
        # retries reuse the already-built blob.
        blob_cache: list[bytes | None] = [None] * self.n

        def block_put(index: int) -> QuorumRequest:
            cloud = self.clouds[index]
            key = self._block_key(unit_id, version, index)
            share = share_for(index)
            prefix = _BLOCK_HEADER.pack(share.x, len(share.data)) + share.data
            row = buffer[index]
            blob_len = len(prefix) + row.shape[0]

            def prepare():
                if blob_cache[index] is None:
                    blob_cache[index] = b"".join((prefix, row.data))

            def send():
                cloud.put(key, blob_cache[index], self.principal)
                return True

            def latency(_value):
                return self._request_latency(cloud, "object_put", blob_len)

            return QuorumRequest(cloud=cloud.name, send=send, latency=latency,
                                 prepare=prepare, mutating=True)

        # Preferred quorum: only the first n - f clouds receive data blocks,
        # which is where the ~1.5x storage factor of Figure 11(c) comes from.
        # The remaining clouds form a fallback stage, dispatched only when a
        # preferred cloud fails (or a hedge fires): the spill-over.
        data_targets = self.n - self.f if self.preferred_quorums else self.n
        required_acks = self._write_quorum()
        call = self._call().stage([block_put(i) for i in range(data_targets)])
        if data_targets < self.n:
            call.stage([block_put(i) for i in range(data_targets, self.n)])
        put_stats = call.execute(required=required_acks)
        self._tap("block_put", unit_id, put_stats)
        if not put_stats.reached:
            raise QuorumNotReachedError(
                f"only {len(put_stats.successes)} clouds acknowledged the data blocks of {unit_id!r}",
                responses=len(put_stats.successes), required=quorum_min_size(required_acks),
            )
        self._charge(put_stats)

        meta_call = self._call().stage(
            [self._put_request(c, self._meta_key(unit_id), meta_blob) for c in self.clouds]
        )
        meta_put_stats = meta_call.execute(required=self._write_quorum())
        self._tap("meta_put", unit_id, meta_put_stats)
        if not meta_put_stats.reached:
            raise QuorumNotReachedError(
                f"only {len(meta_put_stats.successes)} clouds acknowledged the metadata of {unit_id!r}",
                responses=len(meta_put_stats.successes), required=quorum_min_size(self._write_quorum()),
            )
        self._charge(meta_put_stats)
        self._last_written[unit_id] = (
            version, DataUnitMetadata.from_bytes(metadata.to_bytes()))
        return record

    # ------------------------------------------------------------------- read

    def _block_get_request(self, unit_id: str, record: VersionRecord, index: int) -> QuorumRequest:
        """Fetch-and-verify request for block ``index`` of one version."""
        cloud = self.clouds[index]
        key = self._block_key(unit_id, record.version, index)

        def parse(blob: bytes) -> tuple[CodedBlock, SecretShare]:
            if len(blob) < _BLOCK_HEADER.size:
                raise IntegrityError(f"truncated block object {key!r} from {cloud.name}")
            # The digest covers the whole blob (header ‖ share ‖ payload), so
            # a corrupted *share* is rejected here too — not only a corrupted
            # coded payload (see :func:`block_blob_digest`).
            if index < len(record.block_digests) and content_digest(blob) != record.block_digests[index]:
                # Corrupted or Byzantine answer — this cloud's block does not
                # count towards the quorum (but its fetch still took time).
                raise IntegrityError(f"block {index} of {unit_id!r} failed its digest check at {cloud.name}")
            x, share_len = _BLOCK_HEADER.unpack_from(blob)
            share_data = blob[_BLOCK_HEADER.size:_BLOCK_HEADER.size + share_len]
            payload = blob[_BLOCK_HEADER.size + share_len:]
            return CodedBlock(index=index, payload=payload), SecretShare(x=x, data=share_data)

        return self._get_request(cloud, key, parse)

    def _fetch_blocks(self, unit_id: str, record: VersionRecord) -> QuorumCallStats:
        """Fetch ``k`` verified blocks, preferring the systematic clouds.

        Stage 0 asks the first ``k`` clouds, which hold the *systematic*
        blocks: if they all answer correctly the decode is a plain
        concatenation (the preferred-quorum read of the DepSky paper).  The
        clouds holding parity blocks form the fallback stage, dispatched when
        the preferred round cannot deliver ``k`` verified blocks — or earlier,
        as hedged backup requests, when the policy sets a ``hedge_delay``.

        With a :attr:`planner` attached, the primary stage is instead the
        cheapest feasible ``k``-set by expected cost × latency among the
        block-holding clouds (a degraded or expensive systematic cloud is
        planned around rather than hedged after the fact); the decode handles
        any ``k`` rows, so planning only shifts *which* blocks are fetched.
        """
        # With preferred quorums only the first n - f clouds hold data blocks
        # (spill-over aside), so the planner must not pick the block-less tail.
        holders = self.n - self.f if self.preferred_quorums else self.n
        primary = list(range(self.k))
        fallback = list(range(self.k, self.n))
        if self.planner is not None:
            plan = self.planner.plan(
                [self.clouds[i].name for i in range(holders)], self.k,
                "object_get", max(1, record.size // self.k))
            index_of = {self.clouds[i].name: i for i in range(self.n)}
            primary = [index_of[name] for name in plan.primary]
            fallback = ([index_of[name] for name in plan.fallback]
                        + list(range(holders, self.n)))
        call = self._call().stage(
            [self._block_get_request(unit_id, record, i) for i in primary]
        )
        if fallback:
            call.stage([self._block_get_request(unit_id, record, i) for i in fallback])
        stats = call.execute(required=self.k)
        self._tap("block_get", unit_id, stats)
        return stats

    def _assemble(self, unit_id: str, record: VersionRecord,
                  meta_stats: QuorumCallStats | None = None) -> DepSkyReadResult:
        stats = self._fetch_blocks(unit_id, record)
        self._charge(stats)
        if not stats.reached:
            raise QuorumNotReachedError(
                f"could not gather {self.k} valid blocks of {unit_id!r} v{record.version}",
                responses=len(stats.successes), required=self.k,
            )
        # Winners land in completion order; decode and report in row order.
        winners = sorted(stats.winners, key=lambda trace: trace.value[0][0].index)
        blocks = [trace.value[0][0] for trace in winners]
        shares = [trace.value[0][1] for trace in winners]
        used = [trace.cloud for trace in winners]
        payload = self.coder.decode(blocks)
        if self.encrypt:
            key = combine_secret(shares, self.k)
            payload = SymmetricCipher(key).decrypt(payload)
        if content_digest(payload) != record.data_digest:
            raise IntegrityError(
                f"decoded payload of {unit_id!r} v{record.version} does not match its digest"
            )
        indices = tuple(b.index for b in blocks)
        path = "systematic" if all(i < self.k for i in indices) else "coded"
        return DepSkyReadResult(data=payload, record=record, clouds_used=used,
                                path=path, block_indices=indices,
                                stats=stats, meta_stats=meta_stats)

    def read_latest(self, unit_id: str) -> DepSkyReadResult:
        """Read the most recent version of ``unit_id`` (classic DepSky read)."""
        metadata, meta_stats = self._read_metadata(unit_id, use_cached=False)
        self._charge(meta_stats)
        if metadata is None or metadata.latest() is None:
            raise ObjectNotFoundError(f"data unit {unit_id!r} has no visible version")
        return self._assemble(unit_id, metadata.latest(), meta_stats)

    def read_matching(self, unit_id: str, digest: str) -> DepSkyReadResult:
        """Read the version of ``unit_id`` whose plaintext digest is ``digest``.

        This is the operation added to DepSky for SCFS (§3.2): the digest comes
        from the consistency anchor, so a metadata copy containing it is
        self-verifying and a single copy suffices to locate the version.
        Raises :class:`ObjectNotFoundError` when no cloud has (yet) a metadata
        copy listing the requested digest — the caller retries, implementing
        the ``do ... while`` loop of Figure 3.
        """
        metadata, meta_stats = self._read_metadata(unit_id, use_cached=False)
        self._charge(meta_stats)
        record = metadata.find_by_digest(digest) if metadata is not None else None
        if record is None:
            # Fall back to scanning every copy (a lagging majority may not list
            # the version yet while one up-to-date cloud already does).
            record = self._find_digest_any_copy(unit_id, digest)
        if record is None:
            raise ObjectNotFoundError(
                f"no cloud lists a version of {unit_id!r} with digest {digest[:12]}…"
            )
        return self._assemble(unit_id, record, meta_stats)

    def _find_digest_any_copy(self, unit_id: str, digest: str) -> VersionRecord | None:
        for cloud in self.clouds:
            try:
                blob = cloud.get(self._meta_key(unit_id), self.principal)
                copy = DataUnitMetadata.from_bytes(blob)
            except (CloudError, ValueError):
                continue
            record = copy.find_by_digest(digest)
            if record is not None:
                return record
        return None

    # ----------------------------------------------------------- maintenance

    def list_versions(self, unit_id: str) -> list[VersionRecord]:
        """Return the agreed version history of ``unit_id`` (empty if unknown)."""
        metadata, meta_stats = self._read_metadata(unit_id)
        self._charge(meta_stats)
        return list(metadata.versions) if metadata is not None else []

    def delete_version(self, unit_id: str, version: int,
                       anchored_digest: str | None = None) -> None:
        """Delete the blocks of one version from every cloud and update metadata.

        Used by the SCFS garbage collector (§2.5.3).  Deletes are best-effort:
        an unreachable cloud keeps its (orphaned) block, so the call charges
        the quorum wait but never raises.

        ``anchored_digest`` is the digest the caller knows to be the unit's
        *current* version (from the consistency anchor).  If the metadata
        this client can see does not list it — the clouds' copies still lag
        the commit — the whole delete is skipped rather than rewriting the
        metadata from a stale history (which would erase the freshly
        committed record and make the anchored version unreadable).  The next
        collection pass retries.
        """
        metadata, meta_stats = self._read_metadata(unit_id)
        self._charge(meta_stats)
        if anchored_digest is not None and (
                metadata is None or metadata.find_by_digest(anchored_digest) is None):
            return

        def delete_request(index: int) -> QuorumRequest:
            cloud = self.clouds[index]

            def send():
                cloud.delete(self._block_key(unit_id, version, index), self.principal)
                return True

            def latency(_value):
                return self._request_latency(cloud, "object_delete", 0)

            return QuorumRequest(cloud=cloud.name, send=send, latency=latency, mutating=True)

        delete_stats = self._call().stage(
            [delete_request(i) for i in range(self.n)]
        ).execute(required=self._write_quorum())
        self._tap("block_delete", unit_id, delete_stats)
        self._charge(delete_stats)
        if metadata is not None and metadata.remove_version(version):
            blob = metadata.to_bytes()
            put_stats = self._call().stage(
                [self._put_request(c, self._meta_key(unit_id), blob) for c in self.clouds]
            ).execute(required=self._write_quorum())
            self._tap("meta_put", unit_id, put_stats)
            self._charge(put_stats)
            if put_stats.reached:
                # Deleting does not raise the version: keep the old knowledge
                # floor so our pruned copy outranks the still-visible history.
                previous_floor = self._last_written.get(unit_id, (0, None))[0]
                latest = metadata.latest()
                floor = max(previous_floor, latest.version if latest else 0)
                self._last_written[unit_id] = (
                    floor, DataUnitMetadata.from_bytes(blob))

    def destroy_unit(self, unit_id: str) -> None:
        """Remove every object of the data unit from every cloud."""
        self._last_written.pop(unit_id, None)
        if self.coalescer is not None:
            # Direct deletes bypass the quorum engine, so expire the
            # coalescing window by hand.
            self.coalescer.invalidate()
        prefix = self.unit_prefix(unit_id)
        for cloud in self.clouds:
            try:
                listing = cloud.list_keys(prefix, self.principal)
                for key in listing.keys:
                    cloud.delete(key, self.principal)
            except CloudError:
                continue

    def set_acl(self, unit_id: str, grantee: Principal, permission: Permission) -> None:
        """Grant ``permission`` on the whole data unit to ``grantee`` in every cloud.

        Uses one prefix (bucket-policy) grant per cloud so that future versions
        are covered too — the cloud-side half of SCFS's ``setfacl`` (§2.6).
        """

        def acl_request(cloud: ObjectStore) -> QuorumRequest:
            canonical = grantee.canonical_id(cloud.name)

            def send():
                set_policy = getattr(cloud, "set_bucket_policy", None)
                if set_policy is not None:
                    set_policy(self.unit_prefix(unit_id), canonical, permission, self.principal)
                else:  # pragma: no cover - only for exotic ObjectStore impls
                    for key in cloud.list_keys(self.unit_prefix(unit_id), self.principal).keys:
                        cloud.set_acl(key, canonical, permission, self.principal)
                return True

            def latency(_value):
                return self._request_latency(cloud, "metadata_op", 0)

            return QuorumRequest(cloud=cloud.name, send=send, latency=latency, mutating=True)

        stats = self._call().stage(
            [acl_request(c) for c in self.clouds]
        ).execute(required=self._write_quorum())
        self._tap("acl", unit_id, stats)
        self._charge(stats)

    def stored_bytes(self, unit_id: str) -> int:
        """Total bytes stored for ``unit_id`` across all clouds (cost analysis)."""
        total = 0
        for cloud in self.clouds:
            try:
                listing = cloud.list_keys(self.unit_prefix(unit_id), self.principal)
                total += listing.total_bytes
            except CloudError:
                continue
        return total
