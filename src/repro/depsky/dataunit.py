"""Data-unit metadata stored (replicated) in every cloud.

Each DepSky data unit keeps, *in every cloud*, a small metadata object listing
the versions written so far: version number, digest of the plaintext, digest of
each coded block, the payload size and the writing principal.  The hashes of
all versions being present in this metadata object is what allows the SCFS
extension ``read_matching(hash)`` to locate an arbitrary version (§3.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class VersionRecord:
    """Metadata of one written version of a data unit."""

    version: int
    data_digest: str
    size: int
    block_digests: tuple[str, ...]
    created_at: float
    writer: str

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "version": self.version,
            "data_digest": self.data_digest,
            "size": self.size,
            "block_digests": list(self.block_digests),
            "created_at": self.created_at,
            "writer": self.writer,
        }

    @staticmethod
    def from_dict(raw: dict) -> "VersionRecord":
        """Deserialise from :meth:`to_dict` output."""
        return VersionRecord(
            version=int(raw["version"]),
            data_digest=str(raw["data_digest"]),
            size=int(raw["size"]),
            block_digests=tuple(raw["block_digests"]),
            created_at=float(raw["created_at"]),
            writer=str(raw["writer"]),
        )


@dataclass
class DataUnitMetadata:
    """The full version history of one data unit."""

    unit_id: str
    versions: list[VersionRecord] = field(default_factory=list)

    def latest(self) -> VersionRecord | None:
        """The most recent version record, or None for an empty unit."""
        return max(self.versions, key=lambda v: v.version) if self.versions else None

    def find_by_digest(self, digest: str) -> VersionRecord | None:
        """Return the (most recent) version whose plaintext digest is ``digest``."""
        candidates = [v for v in self.versions if v.data_digest == digest]
        return max(candidates, key=lambda v: v.version) if candidates else None

    def find_by_version(self, version: int) -> VersionRecord | None:
        """Return the record with the given version number, if present."""
        for record in self.versions:
            if record.version == version:
                return record
        return None

    def next_version(self) -> int:
        """Version number the next write should use."""
        latest = self.latest()
        return 1 if latest is None else latest.version + 1

    def add(self, record: VersionRecord) -> None:
        """Append a new version record."""
        self.versions.append(record)

    def remove_version(self, version: int) -> bool:
        """Remove the record with the given version number; True if removed."""
        before = len(self.versions)
        self.versions = [v for v in self.versions if v.version != version]
        return len(self.versions) != before

    def to_bytes(self) -> bytes:
        """Serialise the metadata object for storage in a cloud."""
        return json.dumps(
            {"unit_id": self.unit_id, "versions": [v.to_dict() for v in self.versions]},
            sort_keys=True,
        ).encode()

    @staticmethod
    def from_bytes(blob: bytes) -> "DataUnitMetadata":
        """Parse a metadata object read from a cloud.

        Raises ``ValueError`` if the blob is not valid metadata (e.g. returned
        by a Byzantine provider).
        """
        try:
            raw = json.loads(blob.decode())
            return DataUnitMetadata(
                unit_id=str(raw["unit_id"]),
                versions=[VersionRecord.from_dict(v) for v in raw["versions"]],
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise ValueError(f"malformed data-unit metadata: {exc}") from exc
