"""DepSky — dependable and secure storage on a cloud-of-clouds.

SCFS's CoC backend stores file data through the DepSky protocols
[Bessani et al., ACM TOS 2013], summarised in §3.2 and Figure 6 of the SCFS
paper.  A *data unit* is a logical register whose versions are spread across
``n = 3f+1`` independent clouds so that the confidentiality, integrity and
availability of the data survive ``f`` arbitrarily faulty providers:

1. a fresh random key encrypts the data;
2. the ciphertext is erasure-coded into ``n`` blocks, any ``k = f+1`` of which
   rebuild it;
3. the key is split with secret sharing so that no single cloud can decrypt;
4. each cloud stores one block + one key share, plus a copy of the data unit's
   version metadata.

The SCFS paper extends DepSky with an operation that reads *the version with a
given hash* rather than the latest one — the hook the consistency-anchor
algorithm needs (§2.4).  That extension is :meth:`DepSkyClient.read_matching`.
"""

from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.depsky.protocol import DepSkyClient, DepSkyReadResult

__all__ = [
    "DataUnitMetadata",
    "VersionRecord",
    "DepSkyClient",
    "DepSkyReadResult",
]
