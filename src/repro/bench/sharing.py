"""The file-sharing latency experiment of Figure 9.

Two clients, A and B, share a folder.  The experiment measures the elapsed
time between the instant client A *closes* a file it wrote into the shared
folder and the instant client B has read that exact version — the moment it
would send the UDP acknowledgement in the paper's setup.  The experiment is
repeated for several file sizes and the 50th and 90th percentiles are
reported, for the blocking and non-blocking SCFS variants on both backends and
for a Dropbox-like synchronisation service.

For the blocking variants the latency is small because ``close`` only returns
once the data (and metadata) are already in the clouds: the measured time is
essentially B's detection and download.  For the non-blocking variants the
upload still has to happen after ``close`` returns, so the latency includes
it.  The Dropbox-like pipeline adds monitor, server-processing and
notification delays on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.dropbox import DropboxLikeService
from repro.bench.report import percentile
from repro.bench.targets import build_target
from repro.common.errors import FileNotFoundErrorFS, FileSystemError
from repro.common.types import Permission
from repro.common.units import KB, MB
from repro.crypto.hashing import content_digest
from repro.simenv.environment import Simulation

#: The file sizes of Figure 9.
DEFAULT_SIZES: tuple[int, ...] = (256 * KB, 1 * MB, 4 * MB, 16 * MB)

#: The systems compared in Figure 9.
SHARING_SYSTEMS: tuple[str, ...] = ("SCFS-CoC-B", "SCFS-CoC-NB", "SCFS-AWS-B", "SCFS-AWS-NB",
                                    "Dropbox")


@dataclass
class SharingResult:
    """Latency percentiles of one (system, file size) cell of Figure 9."""

    system: str
    file_size: int
    p50: float
    p90: float
    samples: list[float] = field(default_factory=list)


def _payload(size: int, seed: int) -> bytes:
    pattern = bytes((i * 241 + seed * 13) % 256 for i in range(min(size, 8192)))
    repeats = size // len(pattern) + 1 if pattern else 0
    return (pattern * repeats)[:size]


def run_sharing_benchmark(variant_name: str, file_size: int, trials: int = 9,
                          seed: int = 0, poll_interval: float = 0.2,
                          timeout: float = 900.0) -> SharingResult:
    """Measure the sharing latency of one SCFS variant for one file size."""
    target = build_target(variant_name, seed=seed)
    deployment = target.deployment
    if deployment is None:
        raise ValueError("run_sharing_benchmark only accepts SCFS variants")
    writer = target.fs
    reader = deployment.create_agent("reader")

    writer.mkdir("/shared", shared=True)
    path = "/shared/payload.bin"
    writer.write_file(path, _payload(1024, seed=seed), shared=True)
    writer.setfacl(path, "reader", Permission.READ)
    deployment.drain(2.0)

    samples: list[float] = []
    for trial in range(trials):
        data = _payload(file_size, seed=seed + trial + 1)
        digest = content_digest(data)
        handle = writer.open(path, "r+")
        writer.truncate(handle, 0)
        writer.write(handle, data)
        writer.close(handle)
        closed_at = deployment.sim.now()

        # Client B polls the file until it observes (and has read) the new version.
        waited = 0.0
        while True:
            meta = reader.stat(path)
            if meta.digest == digest:
                content = reader.read_file(path)
                if content_digest(content) == digest:
                    break
            deployment.sim.advance(poll_interval)
            waited += poll_interval
            if waited > timeout:
                raise FileSystemError(
                    f"{variant_name}: shared file did not become visible within {timeout}s"
                )
        samples.append(deployment.sim.now() - closed_at)
        deployment.drain(1.0)

    return SharingResult(
        system=variant_name, file_size=file_size,
        p50=percentile(samples, 50), p90=percentile(samples, 90), samples=samples,
    )


def run_dropbox_sharing(file_size: int, trials: int = 9, seed: int = 0,
                        poll_interval: float = 0.5) -> SharingResult:
    """Measure the sharing latency of the Dropbox-like service for one file size."""
    sim = Simulation(seed=seed)
    service = DropboxLikeService(sim)
    writer = service.register("writer")
    reader = service.register("reader")

    samples: list[float] = []
    for trial in range(trials):
        path = f"/shared/file-{trial}.bin"
        writer.write_file(path, _payload(file_size, seed=seed + trial))
        start = sim.now()
        try:
            waited = reader.wait_for(path, poll_interval=poll_interval)
        except FileNotFoundErrorFS:
            waited = float("inf")
        samples.append(waited if waited != float("inf") else sim.now() - start)
    return SharingResult(
        system="Dropbox", file_size=file_size,
        p50=percentile(samples, 50), p90=percentile(samples, 90), samples=samples,
    )


def run_sharing_matrix(sizes: tuple[int, ...] = DEFAULT_SIZES, trials: int = 9,
                       seed: int = 0) -> dict[str, dict[int, SharingResult]]:
    """Regenerate all of Figure 9: ``{system: {file_size: SharingResult}}``."""
    results: dict[str, dict[int, SharingResult]] = {}
    for system in SHARING_SYSTEMS:
        per_size: dict[int, SharingResult] = {}
        for size in sizes:
            if system == "Dropbox":
                per_size[size] = run_dropbox_sharing(size, trials=trials, seed=seed)
            else:
                per_size[size] = run_sharing_benchmark(system, size, trials=trials, seed=seed)
        results[system] = per_size
    return results
