"""Per-PR benchmark trajectories: ``BENCH_<name>.json`` files at the repo root.

Every benchmark harness appends one entry per PR to its trajectory file::

    [
      {"pr": 5, "date": "2026-07-30", "metrics": {"read_p50_s": 0.141, ...}},
      {"pr": 6, "date": "2026-08-07", "metrics": {"read_p50_s": 0.139, ...}}
    ]

The file is a JSON array ordered by ``pr``; re-recording an existing PR
*merges* the new metrics into its entry (several tests of one harness
contribute to the same entry, and a re-run is idempotent).  The checked-in
files are the performance history of the repo: CI re-measures the tip as a
*candidate* entry and gates selected metrics against the last checked-in one
(:func:`gate`), so a perf regression fails the build while the diff of the
trajectory file documents every PR's numbers.

Environment knobs
-----------------
``BENCH_PR``
    PR number to record under.  Unset: one past the last recorded entry
    (the CI candidate-entry mode).
``BENCH_DATE``
    ISO date to stamp (unset: today).
``BENCH_OUTPUT_DIR``
    Directory holding the ``BENCH_*.json`` files (unset: the repo root,
    located relative to this package).

Command line
------------
``python -m repro.bench.trajectory gate BENCH_scale.json --tol metric=0.5``
compares the last entry against the previous one: each ``--tol`` metric is
lower-is-better and may grow by at most the given fraction (``0.5`` = +50 %),
while each ``--floor`` metric is higher-is-better and may *drop* by at most
the given fraction (``--floor encode_mbps_4_2=0.2`` fails when throughput
falls below 80 % of the baseline).  Exit status 1 on violation.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys
from pathlib import Path
from typing import Any


def bench_root() -> Path:
    """Directory holding the trajectory files (env override or repo root)."""
    override = os.environ.get("BENCH_OUTPUT_DIR")
    if override:
        return Path(override)
    # src/repro/bench/trajectory.py -> repo root is four parents up.
    return Path(__file__).resolve().parents[3]


def trajectory_path(name: str, root: Path | None = None) -> Path:
    """Path of the ``BENCH_<name>.json`` trajectory file."""
    return (root or bench_root()) / f"BENCH_{name}.json"


def load_trajectory(name: str, root: Path | None = None) -> list[dict[str, Any]]:
    """The recorded entries of one trajectory, ordered by PR (empty if none)."""
    path = trajectory_path(name, root)
    if not path.exists():
        return []
    entries = json.loads(path.read_text())
    if not isinstance(entries, list):
        raise ValueError(f"{path} must hold a JSON array of entries")
    return sorted(entries, key=lambda entry: entry["pr"])


#: Candidate PR numbers picked per (file, trajectory) this process.  All
#: default-pr record_bench calls of one bench run must land on ONE candidate
#: entry — without this, the second test of a harness would see the first
#: test's candidate as "the last entry" and open yet another one, and the
#: gate would end up comparing the two halves of the same run.
_candidate_prs: dict[Path, int] = {}


def record_bench(name: str, metrics: dict[str, Any], pr: int | None = None,
                 date: str | None = None, root: Path | None = None) -> Path:
    """Merge ``metrics`` into the trajectory entry for ``pr`` and rewrite the file.

    ``pr`` defaults to ``$BENCH_PR`` when set, otherwise to one past the last
    recorded entry (a fresh *candidate* entry for CI gating; ``1`` on an empty
    trajectory).  The candidate number is remembered per trajectory file, so
    every default-pr call in one process merges into the same entry.
    Returns the path written.
    """
    entries = load_trajectory(name, root)
    if pr is None:
        env = os.environ.get("BENCH_PR")
        if env:
            pr = int(env)
        else:
            candidate_key = trajectory_path(name, root).resolve()
            pr = _candidate_prs.get(candidate_key)
            if pr is None:
                pr = entries[-1]["pr"] + 1 if entries else 1
                _candidate_prs[candidate_key] = pr
    if date is None:
        date = os.environ.get("BENCH_DATE") or datetime.date.today().isoformat()
    for entry in entries:
        if entry["pr"] == pr:
            entry["date"] = date
            entry["metrics"].update(metrics)
            break
    else:
        entries.append({"pr": pr, "date": date, "metrics": dict(metrics)})
        entries.sort(key=lambda entry: entry["pr"])
    path = trajectory_path(name, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return path


def gate(entries: list[dict[str, Any]],
         tolerances: dict[str, float],
         floors: dict[str, float] | None = None) -> tuple[list[str], list[str]]:
    """Compare the last entry against the previous one under the given bounds.

    ``tolerances`` maps a lower-is-better metric to its maximum allowed
    fractional growth (``0.5`` allows the metric to rise by 50 %).
    ``floors`` maps a higher-is-better metric (e.g. a throughput) to its
    maximum allowed fractional *drop* (``0.2`` fails when it falls below
    80 % of the baseline).  Returns ``(report_lines, violations)`` — an
    empty violation list means the gate passes.  With fewer than two
    entries, or when a gated metric is missing from either side, the metric
    is reported as ungated rather than failed (a new metric needs one PR to
    seed its baseline).
    """
    report: list[str] = []
    violations: list[str] = []
    if len(entries) < 2:
        report.append("gate: fewer than two entries recorded — nothing to compare")
        return report, violations
    baseline, current = entries[-2], entries[-1]
    report.append(f"gate: PR {current['pr']} vs baseline PR {baseline['pr']}")
    bounds = [(metric, tolerance, "ceiling")
              for metric, tolerance in sorted(tolerances.items())]
    bounds += [(metric, fraction, "floor")
               for metric, fraction in sorted((floors or {}).items())]
    for metric, fraction, kind in bounds:
        before = baseline["metrics"].get(metric)
        after = current["metrics"].get(metric)
        if before is None or after is None:
            report.append(f"  {metric}: missing on one side — ungated "
                          f"(baseline={before!r}, current={after!r})")
            continue
        if kind == "ceiling":
            limit = before * (1.0 + fraction)
            violated = after > limit
            bound_text = f"limit {limit:g}, +{fraction:.0%}"
            fail_text = (f"{metric} regressed: {after:g} > {limit:g} "
                         f"(baseline {before:g} +{fraction:.0%})")
        else:
            limit = before * (1.0 - fraction)
            violated = after < limit
            bound_text = f"floor {limit:g}, -{fraction:.0%}"
            fail_text = (f"{metric} regressed: {after:g} < floor {limit:g} "
                         f"(baseline {before:g} -{fraction:.0%})")
        status = "REGRESSION" if violated else "ok"
        report.append(f"  {metric}: {before:g} -> {after:g} "
                      f"({bound_text}) {status}")
        if violated:
            violations.append(fail_text)
    return report, violations


def _parse_tolerance(text: str) -> tuple[str, float]:
    metric, _, value = text.partition("=")
    if not metric or not value:
        raise argparse.ArgumentTypeError(
            f"expected metric=fraction, got {text!r}")
    return metric, float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="Inspect and gate BENCH_*.json perf trajectories.")
    sub = parser.add_subparsers(dest="command", required=True)
    gate_parser = sub.add_parser(
        "gate", help="fail when the last entry regresses past tolerance")
    gate_parser.add_argument("file", type=Path, help="trajectory JSON file")
    gate_parser.add_argument(
        "--tol", action="append", type=_parse_tolerance, default=[],
        metavar="METRIC=FRACTION",
        help="gate lower-is-better METRIC to at most +FRACTION growth "
             "over the baseline")
    gate_parser.add_argument(
        "--floor", action="append", type=_parse_tolerance, default=[],
        metavar="METRIC=FRACTION",
        help="gate higher-is-better METRIC to at most -FRACTION drop "
             "below the baseline")
    show_parser = sub.add_parser("show", help="print one trajectory")
    show_parser.add_argument("file", type=Path)
    args = parser.parse_args(argv)

    entries = json.loads(args.file.read_text())
    entries.sort(key=lambda entry: entry["pr"])
    if args.command == "show":
        json.dump(entries, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    report, violations = gate(entries, dict(args.tol), dict(args.floor))
    print("\n".join(report))
    if violations:
        print("\n".join(f"FAIL: {v}" for v in violations), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    raise SystemExit(main())
