"""Plain-text rendering of benchmark results.

The ``benchmarks/`` pytest files print the regenerated tables/series with
these helpers so that the rows the paper reports can be eyeballed directly in
the benchmark output (and diffed against EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """Render a fixed-width text table with a title line."""
    formatted_rows = []
    for row in rows:
        formatted = []
        for cell in row:
            if isinstance(cell, float):
                formatted.append(float_format.format(cell))
            else:
                formatted.append(str(cell))
        formatted_rows.append(formatted)
    widths = [len(str(h)) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``, linearly interpolated."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def render_read_paths(title: str, stats_by_target: dict) -> str:
    """Render the preferred-quorum read statistics of CoC targets.

    ``stats_by_target`` maps a target/system label to a
    :class:`~repro.core.backend.ReadPathStats`; targets without cloud reads
    (everything served from local caches) are shown with a dash.
    """
    rows = []
    any_cloud_reads = False
    for target, stats in stats_by_target.items():
        if stats is None or stats.total == 0:
            rows.append([target, 0, 0, 0, "-", 0, 0, 0, 0])
            continue
        any_cloud_reads = True
        rows.append([target, stats.total, stats.systematic, stats.coded,
                     f"{100.0 * stats.systematic_rate:.0f}%",
                     stats.fallback_reads, stats.hedged_requests,
                     stats.demoted_requests, stats.probe_requests])
    table = render_table(
        title,
        ["target", "cloud reads", "systematic", "coded", "hit rate", "fallback",
         "hedged", "demoted", "probes"],
        rows,
    )
    if rows and not any_cloud_reads:
        table += ("\n(no cloud reads: every read was served from the local caches —"
                  " the always-write/avoid-reading principle at work)")
    return table


def human_size(size: int) -> str:
    """Short label for a file size (256K, 1M, 16M…)."""
    if size >= 1024 * 1024:
        value = size / (1024 * 1024)
        return f"{value:.0f}M" if value == int(value) else f"{value:.1f}M"
    if size >= 1024:
        return f"{size // 1024}K"
    return f"{size}B"
