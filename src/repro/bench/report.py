"""Plain-text rendering of benchmark results.

The ``benchmarks/`` pytest files print the regenerated tables/series with
these helpers so that the rows the paper reports can be eyeballed directly in
the benchmark output (and diffed against EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """Render a fixed-width text table with a title line."""
    formatted_rows = []
    for row in rows:
        formatted = []
        for cell in row:
            if isinstance(cell, float):
                formatted.append(float_format.format(cell))
            else:
                formatted.append(str(cell))
        formatted_rows.append(formatted)
    widths = [len(str(h)) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def human_size(size: int) -> str:
    """Short label for a file size (256K, 1M, 16M…)."""
    if size >= 1024 * 1024:
        value = size / (1024 * 1024)
        return f"{value:.0f}M" if value == int(value) else f"{value:.1f}M"
    if size >= 1024:
        return f"{size // 1024}K"
    return f"{size}B"
