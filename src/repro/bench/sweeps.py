"""Parameter sweeps of Figure 10: metadata-cache expiration and PNS sharing.

Both sweeps run the two metadata-intensive micro-benchmarks (create files and
copy files) on SCFS-CoC-NB, the configuration used in §4.4:

* Figure 10(a) varies the expiration time of the short-lived metadata cache
  (0, 250 and 500 ms).  Disabling the cache makes every VFS-style ``stat``
  burst hit the coordination service and severely degrades performance;
  beyond a few hundred milliseconds the benefit saturates.
* Figure 10(b) enables Private Name Spaces and varies the percentage of files
  shared between more than one user (0–100 %).  All other experiments use
  100 % sharing (the worst case); as more files become private, fewer
  coordination accesses are needed and latency drops accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.filebench import MicroBenchmarkParams, copy_files, create_files
from repro.bench.targets import build_target
from repro.core.config import CacheConfig


@dataclass
class SweepPoint:
    """Result of one sweep setting: create/copy latency in simulated seconds."""

    setting: float
    create_seconds: float
    copy_seconds: float


@dataclass
class SweepResult:
    """A full sweep (Figure 10(a) or 10(b))."""

    parameter: str
    variant: str
    points: list[SweepPoint] = field(default_factory=list)


#: Expiration times of Figure 10(a), in seconds.
DEFAULT_EXPIRATIONS: tuple[float, ...] = (0.0, 0.250, 0.500)

#: Sharing percentages of Figure 10(b).
DEFAULT_SHARING_PERCENTAGES: tuple[int, ...] = (0, 25, 50, 75, 100)


def run_metadata_cache_sweep(expirations: tuple[float, ...] = DEFAULT_EXPIRATIONS,
                             variant: str = "SCFS-CoC-NB", seed: int = 0,
                             params: MicroBenchmarkParams | None = None) -> SweepResult:
    """Figure 10(a): create/copy latency vs metadata-cache expiration time."""
    params = params or MicroBenchmarkParams()
    result = SweepResult(parameter="metadata_cache_expiration", variant=variant)
    for expiration in expirations:
        caches = CacheConfig(metadata_expiration=expiration)
        create_target = build_target(variant, seed=seed, caches=caches)
        create_seconds = create_files(create_target, params)
        copy_target = build_target(variant, seed=seed, caches=caches)
        copy_seconds = copy_files(copy_target, params)
        result.points.append(SweepPoint(expiration, create_seconds, copy_seconds))
    return result


def run_pns_sweep(sharing_percentages: tuple[int, ...] = DEFAULT_SHARING_PERCENTAGES,
                  variant: str = "SCFS-CoC-NB", seed: int = 0,
                  params: MicroBenchmarkParams | None = None) -> SweepResult:
    """Figure 10(b): create/copy latency vs percentage of shared files (with PNS)."""
    params = params or MicroBenchmarkParams()
    result = SweepResult(parameter="shared_files_percent", variant=variant)
    for percent in sharing_percentages:
        fraction = percent / 100.0
        create_target = build_target(variant, seed=seed, private_name_spaces=True)
        create_seconds = create_files(create_target, params, shared_fraction=fraction)
        copy_target = build_target(variant, seed=seed, private_name_spaces=True)
        copy_seconds = copy_files(copy_target, params, shared_fraction=fraction)
        result.points.append(SweepPoint(float(percent), create_seconds, copy_seconds))
    return result
