"""The six Filebench micro-benchmarks of Table 3.

Paper parameters (§4.2, Table 3):

=====================  ==========  =========
micro-benchmark        operations  file size
=====================  ==========  =========
sequential read        1           4 MB
sequential write       1           4 MB
random 4 KB-read       256 k       4 MB
random 4 KB-write      256 k       4 MB
create files           200         16 KB
copy files             100         16 KB
=====================  ==========  =========

The IO-intensive benchmarks (the first four) measure only the read/write calls
— the file is opened before the measured phase and closed after it, exactly as
Filebench's personality files do.  The metadata-intensive benchmarks (create
and copy) measure the whole create/open/write/close sequences and additionally
issue the ``stat`` calls a real VFS generates around each operation (path
lookup before the call and ``getattr`` after it), which is what makes the
metadata cache of Figure 10(a) matter.

Running 256 k individual 4 KB operations through a Python agent for nine file
systems would dominate wall-clock time without changing the simulated result
(per-operation latencies are independent), so the random benchmarks execute a
configurable sample of operations and scale the simulated total linearly; the
default sample is 2 048 operations.  Set ``sample_ops=None`` to run every
operation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.common.units import KB, MB
from repro.bench.targets import ALL_TARGET_NAMES, BenchTarget, build_target


@dataclass(frozen=True)
class MicroBenchmarkParams:
    """Knobs of the Table 3 workloads (paper defaults)."""

    io_file_size: int = 4 * MB
    #: Request size of the sequential read/write benchmarks.  Larger chunks
    #: (up to whole multi-MB files) exercise the erasure coder's chunked
    #: encode path, which bounds temporary memory regardless of payload size.
    io_chunk: int = 128 * KB
    random_ops: int = 256 * 1024
    random_chunk: int = 4 * KB
    #: Number of random operations actually executed (None = all of them);
    #: the simulated time is scaled to ``random_ops``.
    sample_ops: int | None = 2048
    create_count: int = 200
    copy_count: int = 100
    small_file_size: int = 16 * KB
    #: Issue the VFS-style stat calls around metadata operations.
    emulate_vfs_lookups: bool = True
    #: Working directory used by the metadata-intensive benchmarks.
    directory: str = "/bench"

    def scaled(self, factor: float) -> "MicroBenchmarkParams":
        """Return a proportionally smaller workload (used by quick tests)."""
        return replace(
            self,
            random_ops=max(1, int(self.random_ops * factor)),
            create_count=max(1, int(self.create_count * factor)),
            copy_count=max(1, int(self.copy_count * factor)),
        )


def _payload(size: int, seed: int) -> bytes:
    """Deterministic, non-compressible-looking payload of ``size`` bytes."""
    pattern = bytes((i * 131 + seed * 17) % 256 for i in range(min(size, 4096)))
    repeats = size // len(pattern) + 1 if pattern else 0
    return (pattern * repeats)[:size]


def _stat_if_supported(target: BenchTarget, path: str) -> None:
    stat = getattr(target.fs, "stat", None)
    if stat is not None:
        stat(path)
    else:
        target.fs.exists(path)


def _ensure_directory(target: BenchTarget, params: MicroBenchmarkParams,
                      name: str | None = None, shared: bool = True) -> str:
    """Create (if needed) and return the benchmark directory to work in.

    SCFS targets create it as a *shared* directory by default so that the
    VFS-style ``stat`` of the parent exercises the coordination service, as a
    directory reachable by several users would.  The PNS sweep additionally
    uses private sub-directories (``shared=False``).
    """
    directory = params.directory if name is None else f"{params.directory}/{name}"
    mkdir = getattr(target.fs, "mkdir", None)
    if mkdir is None:
        return directory
    if name is not None and not target.fs.exists(params.directory):
        _make_dir(target, params.directory, shared=True)
    if not target.fs.exists(directory):
        _make_dir(target, directory, shared=shared)
    return directory


def _make_dir(target: BenchTarget, path: str, shared: bool) -> None:
    try:
        target.fs.mkdir(path, shared=shared)
    except TypeError:  # baselines ignore the shared flag entirely
        target.fs.mkdir(path)


# ---------------------------------------------------------------------------
# IO-intensive micro-benchmarks
# ---------------------------------------------------------------------------


def sequential_write(target: BenchTarget, params: MicroBenchmarkParams) -> float:
    """Write a 4 MB file sequentially; returns simulated seconds of the writes."""
    _ensure_directory(target, params)
    path = f"{params.directory}/seq-write.dat"
    handle = target.fs.open(path, "w")
    data = _payload(params.io_file_size, seed=1)
    start = target.sim.now()
    chunk = params.io_chunk
    for offset in range(0, len(data), chunk):
        target.fs.write(handle, data[offset:offset + chunk], offset)
    elapsed = target.sim.now() - start
    target.fs.close(handle)
    target.drain()
    return elapsed


def sequential_read(target: BenchTarget, params: MicroBenchmarkParams) -> float:
    """Read a 4 MB file sequentially; returns simulated seconds of the reads."""
    _ensure_directory(target, params)
    path = f"{params.directory}/seq-read.dat"
    target.fs.write_file(path, _payload(params.io_file_size, seed=2))
    target.drain()
    handle = target.fs.open(path, "r")
    start = target.sim.now()
    chunk = params.io_chunk
    for offset in range(0, params.io_file_size, chunk):
        target.fs.read(handle, chunk, offset)
    elapsed = target.sim.now() - start
    target.fs.close(handle)
    return elapsed


def _random_offsets(target: BenchTarget, params: MicroBenchmarkParams, count: int) -> list[int]:
    max_offset = max(1, params.io_file_size - params.random_chunk)
    return [target.sim.rng.randrange(0, max_offset) for _ in range(count)]


def random_read(target: BenchTarget, params: MicroBenchmarkParams) -> float:
    """256 k random 4 KB reads of a 4 MB file (scaled from a sample)."""
    _ensure_directory(target, params)
    path = f"{params.directory}/rand-read.dat"
    target.fs.write_file(path, _payload(params.io_file_size, seed=3))
    target.drain()
    executed = params.sample_ops or params.random_ops
    executed = min(executed, params.random_ops)
    offsets = _random_offsets(target, params, executed)
    handle = target.fs.open(path, "r")
    start = target.sim.now()
    for offset in offsets:
        target.fs.read(handle, params.random_chunk, offset)
    elapsed = target.sim.now() - start
    target.fs.close(handle)
    return elapsed * (params.random_ops / executed)


def random_write(target: BenchTarget, params: MicroBenchmarkParams) -> float:
    """256 k random 4 KB writes of a 4 MB file (scaled from a sample)."""
    _ensure_directory(target, params)
    path = f"{params.directory}/rand-write.dat"
    target.fs.write_file(path, _payload(params.io_file_size, seed=4))
    target.drain()
    executed = params.sample_ops or params.random_ops
    executed = min(executed, params.random_ops)
    offsets = _random_offsets(target, params, executed)
    payload = _payload(params.random_chunk, seed=5)
    handle = target.fs.open(path, "r+")
    start = target.sim.now()
    for offset in offsets:
        target.fs.write(handle, payload, offset)
    elapsed = target.sim.now() - start
    target.fs.close(handle)
    target.drain()
    return elapsed * (params.random_ops / executed)


# ---------------------------------------------------------------------------
# Metadata-intensive micro-benchmarks
# ---------------------------------------------------------------------------


def _placement(target: BenchTarget, params: MicroBenchmarkParams,
               shared_fraction: float, count: int) -> list[tuple[str, bool]]:
    """Decide, per file, its parent directory and whether it is shared.

    With full sharing (the Table 3 default, the paper's worst case) every file
    lives in one shared benchmark directory.  When a fraction of the files is
    private — the Figure 10(b) sweep — private files go to a *private*
    sub-directory of the user (their metadata stays in the PNS) and shared
    files to a *shared* one, mirroring how home directories versus shared
    project directories are organised in practice.
    """
    shared_count = round(count * shared_fraction)
    if shared_fraction >= 1.0:
        directory = _ensure_directory(target, params)
        return [(directory, True)] * count
    shared_dir = _ensure_directory(target, params, "shared", shared=True)
    private_dir = _ensure_directory(target, params, "private", shared=False)
    placement = []
    for index in range(count):
        shared = index < shared_count
        placement.append((shared_dir if shared else private_dir, shared))
    return placement


def create_files(target: BenchTarget, params: MicroBenchmarkParams,
                 shared_fraction: float = 1.0) -> float:
    """Create ``create_count`` small files; returns the simulated seconds.

    ``shared_fraction`` controls how many of the created files are *shared*
    (forced into the coordination service); it only matters for SCFS targets
    with private name spaces enabled and is the knob behind Figure 10(b).
    """
    placement = _placement(target, params, shared_fraction, params.create_count)
    data = _payload(params.small_file_size, seed=6)
    start = target.sim.now()
    for index, (directory, shared) in enumerate(placement):
        path = f"{directory}/create-{index:05d}.dat"
        if params.emulate_vfs_lookups:
            _stat_if_supported(target, directory)
            target.fs.exists(path)
        handle = target.fs.open(path, "w", shared=shared)
        target.fs.write(handle, data)
        target.fs.close(handle)
        if params.emulate_vfs_lookups:
            _stat_if_supported(target, path)
    elapsed = target.sim.now() - start
    target.drain()
    return elapsed


def copy_files(target: BenchTarget, params: MicroBenchmarkParams,
               shared_fraction: float = 1.0) -> float:
    """Copy ``copy_count`` small files; returns the simulated seconds."""
    placement = _placement(target, params, shared_fraction, params.copy_count)
    data = _payload(params.small_file_size, seed=7)
    sources = []
    for index, (directory, shared) in enumerate(placement):
        path = f"{directory}/copy-src-{index:05d}.dat"
        target.fs.write_file(path, data, shared=shared)
        sources.append((path, directory, shared))
    target.drain()
    start = target.sim.now()
    for index, (source, directory, shared) in enumerate(sources):
        destination = f"{directory}/copy-dst-{index:05d}.dat"
        if params.emulate_vfs_lookups:
            _stat_if_supported(target, source)
        content = target.fs.read_file(source)
        if params.emulate_vfs_lookups:
            target.fs.exists(destination)
        handle = target.fs.open(destination, "w", shared=shared)
        target.fs.write(handle, content)
        target.fs.close(handle)
        if params.emulate_vfs_lookups:
            _stat_if_supported(target, destination)
    elapsed = target.sim.now() - start
    target.drain()
    return elapsed


#: Benchmark name -> workload function, in the row order of Table 3.
MICRO_BENCHMARKS: dict[str, Callable[[BenchTarget, MicroBenchmarkParams], float]] = {
    "sequential read": sequential_read,
    "sequential write": sequential_write,
    "random 4KB-read": random_read,
    "random 4KB-write": random_write,
    "create files": create_files,
    "copy files": copy_files,
}


def run_microbenchmark(benchmark: str, target_name: str, seed: int = 0,
                       params: MicroBenchmarkParams | None = None,
                       read_paths: dict | None = None,
                       **target_overrides) -> float:
    """Run one Table 3 cell: ``benchmark`` on ``target_name``; returns seconds.

    When ``read_paths`` is given, the target's DepSky read-path statistics
    (systematic vs coded hit counts, for CoC targets only) are merged into it
    under the target's name, so table-level callers can report preferred-quorum
    hit rates alongside the latencies.
    """
    params = params or MicroBenchmarkParams()
    workload = MICRO_BENCHMARKS[benchmark]
    target = build_target(target_name, seed=seed, **target_overrides)
    seconds = workload(target, params)
    if read_paths is not None:
        stats = target.read_path_stats()
        if stats is not None:
            previous = read_paths.get(target_name)
            read_paths[target_name] = stats if previous is None else previous.merge(stats)
    return seconds


def run_microbenchmark_table(target_names: tuple[str, ...] = ALL_TARGET_NAMES,
                             benchmarks: tuple[str, ...] | None = None,
                             seed: int = 0,
                             params: MicroBenchmarkParams | None = None,
                             read_paths: dict | None = None) -> dict[str, dict[str, float]]:
    """Regenerate Table 3: ``{benchmark: {target: seconds}}``."""
    params = params or MicroBenchmarkParams()
    benchmarks = benchmarks or tuple(MICRO_BENCHMARKS)
    table: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks:
        row: dict[str, float] = {}
        for target_name in target_names:
            row[target_name] = run_microbenchmark(benchmark, target_name, seed=seed,
                                                  params=params, read_paths=read_paths)
        table[benchmark] = row
    return table
