"""Factories for every system under test.

A :class:`BenchTarget` bundles a freshly built file system, the simulation it
runs on and enough context to drain background work and to collect provider
costs — everything a workload needs, regardless of whether the target is an
SCFS variant or one of the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.localfs import LocalFS
from repro.baselines.s3fs import S3FSLike
from repro.baselines.s3ql import S3QLLike
from repro.clouds.providers import make_provider
from repro.common.types import Principal
from repro.clouds.health import HealthStats
from repro.core.backend import ReadPathStats
from repro.core.deployment import SCFSDeployment
from repro.core.modes import VARIANTS
from repro.simenv.environment import Simulation

#: The six SCFS variants of Table 2, in the column order of Table 3.
SCFS_VARIANT_NAMES: tuple[str, ...] = (
    "SCFS-AWS-NS",
    "SCFS-AWS-NB",
    "SCFS-AWS-B",
    "SCFS-CoC-NS",
    "SCFS-CoC-NB",
    "SCFS-CoC-B",
)

#: Every system of Table 3 (six SCFS variants + the three baselines).
ALL_TARGET_NAMES: tuple[str, ...] = (*SCFS_VARIANT_NAMES, "S3FS", "S3QL", "LocalFS")


@dataclass
class BenchTarget:
    """One system under test, ready to receive a workload."""

    name: str
    fs: object
    sim: Simulation
    deployment: SCFSDeployment | None = None
    user: str = "bench-user"

    def drain(self, extra: float = 0.0) -> None:
        """Run every pending background task (uploads, GC) to completion."""
        if self.deployment is not None:
            self.deployment.drain(extra)
        else:
            self.sim.drain(extra)

    def elapsed_since(self, start: float) -> float:
        """Simulated seconds elapsed since ``start``."""
        return self.sim.now() - start

    def is_scfs(self) -> bool:
        """True for SCFS variants, False for the baselines."""
        return self.deployment is not None

    def _merged_backend_stat(self, getter):
        """Fold one per-backend statistic (anything with ``merge``) over all agents."""
        if self.deployment is None:
            return None
        merged = None
        for filesystem in self.deployment.filesystems.values():
            backend = getattr(getattr(filesystem, "agent", None), "backend", None)
            snapshot = getter(backend) if backend is not None else None
            if snapshot is not None:
                merged = snapshot if merged is None else merged.merge(snapshot)
        return merged

    def read_path_stats(self) -> ReadPathStats | None:
        """Aggregate DepSky read-path statistics across this target's agents.

        Returns ``None`` for targets without a cloud-of-clouds backend (the
        single-cloud variants and the baselines have no preferred quorum to
        hit or miss).
        """
        return self._merged_backend_stat(lambda backend: getattr(backend, "read_paths", None))

    def health_stats(self) -> HealthStats | None:
        """Aggregate cloud-suspicion counters across this target's agents.

        Returns ``None`` for baselines and for SCFS configs that leave health
        tracking disabled (``dispatch.suspicion_threshold == 0``).
        """
        return self._merged_backend_stat(lambda backend: backend.health_stats())


def build_target(name: str, seed: int = 0, **scfs_overrides) -> BenchTarget:
    """Build a named system under test on a fresh simulation.

    ``name`` is one of :data:`ALL_TARGET_NAMES`.  ``scfs_overrides`` are extra
    :class:`~repro.core.config.SCFSConfig` fields applied to SCFS variants
    (e.g. ``private_name_spaces=True`` or a custom ``caches`` config); they are
    ignored for baselines.
    """
    sim = Simulation(seed=seed)
    if name in VARIANTS:
        deployment = SCFSDeployment.for_variant(name, sim=sim, **scfs_overrides)
        fs = deployment.create_agent("bench-user")
        return BenchTarget(name=name, fs=fs, sim=sim, deployment=deployment)
    if name == "S3FS":
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        fs = S3FSLike(sim, store, Principal("bench-user"))
        return BenchTarget(name=name, fs=fs, sim=sim)
    if name == "S3QL":
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        fs = S3QLLike(sim, store, Principal("bench-user"))
        return BenchTarget(name=name, fs=fs, sim=sim)
    if name == "LocalFS":
        return BenchTarget(name=name, fs=LocalFS(sim), sim=sim)
    raise KeyError(f"unknown benchmark target {name!r}; known: {ALL_TARGET_NAMES}")
