"""The file-synchronisation-service benchmark of Figures 7 and 8.

The benchmark simulates how OpenOffice Writer opens, saves and closes an
``.odt`` document stored on the cloud-backed file system, following the traces
of desktop-application I/O described in the paper (Figure 7):

``Open``  action: open the document read-write, read it, create a lock file,
          re-read the document, read the lock file back.
``Save``  action: re-read the document, close the original handle, read and
          delete the first lock file, create a second lock file, read it back,
          truncate the document, write the new contents, fsync them, read them
          back and re-open the document read-write.
``Close`` action: close the document and remove the second lock file.

The ``local_locks`` variant — the "(L)" bars of Figure 8 — keeps the lock
files on a local file system (``/tmp``) instead of the cloud-backed one, which
the paper shows makes the blocking variants usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.localfs import LocalFS
from repro.bench.targets import BenchTarget, build_target
from repro.common.units import MB


#: Default document size: the 1.2 MB used in §4.3 (a 2004-average office file
#: scaled up 15 %/year to 2013).
DEFAULT_FILE_SIZE = int(1.2 * MB)


@dataclass
class SyncBenchmarkResult:
    """Average latency (simulated seconds) of each benchmark action."""

    target: str
    local_locks: bool
    open_latency: float
    save_latency: float
    close_latency: float
    runs: int = 1
    per_run: list[tuple[float, float, float]] = field(default_factory=list)
    #: DepSky read-path statistics of the run (CoC targets only, else None).
    read_paths: object | None = None

    @property
    def total(self) -> float:
        """Total latency of one open+save+close cycle."""
        return self.open_latency + self.save_latency + self.close_latency


def _payload(size: int, seed: int) -> bytes:
    pattern = bytes((i * 197 + seed * 31) % 256 for i in range(min(size, 4096)))
    repeats = size // len(pattern) + 1 if pattern else 0
    return (pattern * repeats)[:size]


class _DocumentSession:
    """Executes the Figure 7 action script once against one target."""

    def __init__(self, target: BenchTarget, lock_fs, document: str, file_size: int, seed: int):
        self.target = target
        self.fs = target.fs
        self.lock_fs = lock_fs
        self.document = document
        self.lock1 = document + ".lock1"
        self.lock2 = document + ".lock2"
        self.file_size = file_size
        self.seed = seed
        self.main_handle: int | None = None

    # -- helpers ------------------------------------------------------------

    def _write_lock(self, path: str) -> None:
        handle = self.lock_fs.open(path, "w")
        self.lock_fs.write(handle, b"lock-entry" * 10)
        self.lock_fs.close(handle)

    def _read_lock(self, path: str) -> None:
        handle = self.lock_fs.open(path, "r")
        self.lock_fs.read(handle)
        self.lock_fs.close(handle)

    def _delete_lock(self, path: str) -> None:
        self.lock_fs.unlink(path)

    def _read_document_once(self) -> None:
        handle = self.fs.open(self.document, "r")
        self.fs.read(handle)
        self.fs.close(handle)

    # -- the three actions -----------------------------------------------------

    def open_action(self) -> None:
        self.main_handle = self.fs.open(self.document, "r+")      # 1
        self.fs.read(self.main_handle)                            # 2
        self._write_lock(self.lock1)                               # 3-5
        self._read_document_once()                                 # 6-8
        self._read_lock(self.lock1)                                # 9-11

    def save_action(self) -> None:
        self._read_document_once()                                 # 1-3
        if self.main_handle is not None:
            self.fs.close(self.main_handle)                        # 4
            self.main_handle = None
        self._read_lock(self.lock1)                                # 5-7
        self._delete_lock(self.lock1)                              # 8
        self._write_lock(self.lock2)                               # 9-11
        self._read_lock(self.lock2)                                # 12-14
        new_content = _payload(self.file_size, seed=self.seed + 1)
        handle = self.fs.open(self.document, "r+")                 # 15 (truncate)
        self.fs.truncate(handle, 0)
        self.fs.write(handle, new_content)                         # 16-18
        self.fs.close(handle)
        handle = self.fs.open(self.document, "r+")                 # 19-21 (fsync)
        self.fs.fsync(handle)
        self.fs.close(handle)
        self._read_document_once()                                 # 22-24
        self.main_handle = self.fs.open(self.document, "r+")       # 25

    def close_action(self) -> None:
        if self.main_handle is not None:
            self.fs.close(self.main_handle)                        # 1
            self.main_handle = None
        self._read_lock(self.lock2)                                # 2-4
        self._delete_lock(self.lock2)                              # 5


def run_sync_benchmark(target_name: str, file_size: int = DEFAULT_FILE_SIZE,
                       local_locks: bool = False, runs: int = 3, seed: int = 0,
                       **target_overrides) -> SyncBenchmarkResult:
    """Run the Figure 8 benchmark against one target.

    Returns the average latency of each action over ``runs`` open/save/close
    cycles of a ``file_size`` document.  With ``local_locks=True`` the lock
    files live on a local file system (the "(L)" variants).
    """
    target = build_target(target_name, seed=seed, **target_overrides)
    lock_fs = LocalFS(target.sim) if local_locks else target.fs
    document = "/documents/report.odt"
    mkdir = getattr(target.fs, "mkdir", None)
    if mkdir is not None and not target.fs.exists("/documents"):
        mkdir("/documents")
    target.fs.write_file(document, _payload(file_size, seed=seed))
    # Let background uploads finish and the objects become visible in the
    # (eventually consistent) clouds before the measured editing session starts.
    target.drain(2.0)

    per_run: list[tuple[float, float, float]] = []
    for run in range(runs):
        session = _DocumentSession(target, lock_fs, document, file_size, seed=seed + run)
        start = target.sim.now()
        session.open_action()
        open_latency = target.sim.now() - start

        start = target.sim.now()
        session.save_action()
        save_latency = target.sim.now() - start

        start = target.sim.now()
        session.close_action()
        close_latency = target.sim.now() - start

        per_run.append((open_latency, save_latency, close_latency))
        # Allow background uploads of the non-blocking variants to settle
        # between editing sessions (the user "thinks" between saves).
        target.drain(1.0)

    open_avg = sum(r[0] for r in per_run) / runs
    save_avg = sum(r[1] for r in per_run) / runs
    close_avg = sum(r[2] for r in per_run) / runs
    return SyncBenchmarkResult(
        target=target_name, local_locks=local_locks,
        open_latency=open_avg, save_latency=save_avg, close_latency=close_avg,
        runs=runs, per_run=per_run, read_paths=target.read_path_stats(),
    )
