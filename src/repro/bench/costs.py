"""The cost analysis of Figure 11.

Three views of what SCFS costs to operate and use:

* **Figure 11(a)** — the *fixed* operation cost: renting the VMs that host the
  coordination service, for one EC2 instance (SCFS-AWS), four EC2 instances,
  or one instance in each of the four compute clouds (SCFS-CoC), together with
  the expected metadata capacity of such a DepSpace deployment;
* **Figure 11(b)** — the *variable* cost per file-system operation: reading a
  file costs outbound traffic (≈$0.12/GB) plus request and coordination
  charges, while writing costs only requests and coordination accesses because
  inbound traffic is free — the economic basis of *always write / avoid
  reading*;
* **Figure 11(c)** — the storage cost per file version per day, where the
  cloud-of-clouds pays ≈50 % more than a single cloud because of the erasure
  coding with preferred quorums.

The per-operation figures are *measured*: the operations are executed against
freshly built deployments and the providers' cost trackers report the dollar
deltas, with coordination-service traffic (1 KB metadata tuples) priced at the
same outbound rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.targets import build_target
from repro.clouds.pricing import COORDINATION_CAPACITY_TUPLES
from repro.clouds.providers import COC_COMPUTE_PROVIDERS, COMPUTE_PRICING
from repro.common.units import GB, KB, MB, micro_dollars

#: Outbound price applied to coordination-service traffic (1 KB per access).
_COORDINATION_OUTBOUND_PER_ACCESS = 0.12 * (1 * KB) / GB
#: Per-request charge of a coordination access (small EC2/ELB request overhead);
#: calibrated so that a metadata-only cached read costs ~11 micro-dollars, the
#: figure quoted in §4.5.
_COORDINATION_REQUEST_COST = 11.2e-6


@dataclass
class OperationCostRow:
    """One row of the Figure 11(a) table."""

    instance: str
    ec2_per_day: float
    ec2_times_four_per_day: float
    coc_per_day: float
    capacity_files: int


def operation_costs_per_day(instances: tuple[str, ...] = ("large", "extra_large")) -> list[OperationCostRow]:
    """Figure 11(a): coordination-service VM rental costs and capacity."""
    rows = []
    ec2 = COMPUTE_PRICING["amazon-ec2"]
    for instance in instances:
        coc = sum(COMPUTE_PRICING[p].price_per_day(instance) for p in COC_COMPUTE_PROVIDERS)
        rows.append(OperationCostRow(
            instance=instance,
            ec2_per_day=ec2.price_per_day(instance),
            ec2_times_four_per_day=4 * ec2.price_per_day(instance),
            coc_per_day=coc,
            capacity_files=COORDINATION_CAPACITY_TUPLES[instance],
        ))
    return rows


@dataclass
class OperationCost:
    """Measured cost (in micro-dollars) of one read or write of a given size."""

    system: str
    operation: str
    file_size: int
    storage_cost: float
    coordination_cost: float
    #: Decode path of a measured CoC read ("systematic"/"coded"; "-" for
    #: writes and single-cloud operations).  Coded reads fetch parity blocks,
    #: so the path is part of the cost story, not just the latency story.
    read_path: str = "-"

    @property
    def total(self) -> float:
        """Total micro-dollars per operation."""
        return self.storage_cost + self.coordination_cost


def _payload(size: int, seed: int = 0) -> bytes:
    pattern = bytes((i * 89 + seed) % 256 for i in range(min(size, 4096)))
    repeats = size // len(pattern) + 1 if pattern else 0
    return (pattern * repeats)[:size]


def _coordination_cost(accesses: int) -> float:
    return accesses * (_COORDINATION_REQUEST_COST + _COORDINATION_OUTBOUND_PER_ACCESS)


def _measure(system: str, operation: str, file_size: int, seed: int = 0) -> OperationCost:
    variant = "SCFS-CoC-B" if system == "CoC" else "SCFS-AWS-B"
    target = build_target(variant, seed=seed)
    deployment = target.deployment
    fs = target.fs
    path = "/cost/sample.bin"
    fs.mkdir("/cost", shared=True)
    data = _payload(file_size, seed)
    fs.write_file(path, data, shared=True)
    deployment.drain(2.0)

    # Drop local caches so a read actually downloads from the cloud(s).
    agent = fs.agent
    before_reads = agent.metadata.coordination_reads + agent.metadata.coordination_writes
    deployment.reset_costs()
    read_path = "-"
    if operation == "read":
        agent.memory_cache.clear()
        agent.disk_cache.clear()
        fs.read_file(path)
        paths = getattr(agent.backend, "read_paths", None)
        if paths is not None and paths.total:
            read_path = "systematic" if paths.coded == 0 else "coded"
    elif operation == "write":
        fs.write_file(path, _payload(file_size, seed + 1), shared=True)
        deployment.drain(2.0)
    else:
        raise ValueError(f"unknown operation {operation!r}")
    costs = deployment.costs()
    accesses = (agent.metadata.coordination_reads + agent.metadata.coordination_writes
                - before_reads)
    # Storage (per-GB-month) charges are excluded here: Figure 11(b) prices the
    # *operation*, Figure 11(c) prices keeping the data.
    storage_side = costs.request_cost + costs.traffic_cost
    return OperationCost(
        system=system, operation=operation, file_size=file_size,
        storage_cost=micro_dollars(storage_side),
        coordination_cost=micro_dollars(_coordination_cost(max(accesses, 1))),
        read_path=read_path,
    )


#: File sizes (bytes) of the Figure 11(b)/(c) x-axis (0–30 MB, a few points).
DEFAULT_COST_SIZES: tuple[int, ...] = (1 * MB, 5 * MB, 10 * MB, 20 * MB, 30 * MB)


def cost_per_operation(sizes: tuple[int, ...] = DEFAULT_COST_SIZES,
                       seed: int = 0) -> dict[str, dict[int, OperationCost]]:
    """Figure 11(b): measured micro-dollars per read/write vs file size."""
    results: dict[str, dict[int, OperationCost]] = {}
    for system in ("CoC", "AWS"):
        for operation in ("read", "write"):
            series = f"{system} {operation}"
            results[series] = {}
            for size in sizes:
                results[series][size] = _measure(system, operation, size, seed=seed)
    return results


def cached_read_cost() -> float:
    """Micro-dollars of reading a locally cached file (metadata validation only).

    The paper reports 11.32 micro-dollars for this case (§4.5): the only charge
    is the ``getMetadata`` access used to validate the cached copy.
    """
    return micro_dollars(_coordination_cost(1))


@dataclass
class StorageCost:
    """Figure 11(c): cost of keeping one version of one file for a day."""

    system: str
    file_size: int
    stored_bytes: int
    micro_dollars_per_day: float


def cost_per_file_day(sizes: tuple[int, ...] = DEFAULT_COST_SIZES,
                      seed: int = 0) -> dict[str, dict[int, StorageCost]]:
    """Figure 11(c): measured storage cost per version per day vs file size."""
    results: dict[str, dict[int, StorageCost]] = {"CoC": {}, "AWS": {}}
    for system in ("CoC", "AWS"):
        variant = "SCFS-CoC-B" if system == "CoC" else "SCFS-AWS-B"
        for size in sizes:
            target = build_target(variant, seed=seed)
            fs = target.fs
            fs.mkdir("/cost", shared=True)
            fs.write_file("/cost/sample.bin", _payload(size, seed), shared=True)
            target.drain(2.0)
            deployment = target.deployment
            stored = 0
            dollars_per_day = 0.0
            for cloud in deployment.clouds:
                provider_bytes = cloud.stored_bytes()
                stored += provider_bytes
                dollars_per_day += cloud.costs.pricing.storage_gb_month * (provider_bytes / GB) / 30.0
            results[system][size] = StorageCost(
                system=system, file_size=size, stored_bytes=stored,
                micro_dollars_per_day=micro_dollars(dollars_per_day),
            )
    return results
