"""Benchmark harness regenerating every table and figure of the paper.

The package splits into *workloads* (what operations are issued) and
*harnesses* (which systems they are issued against and how results are
aggregated):

* :mod:`~repro.bench.targets` — factories building every system under test
  (the six SCFS variants of Table 2, S3FS, S3QL, LocalFS) on a fresh
  simulation;
* :mod:`~repro.bench.filebench` — the six Filebench micro-benchmarks of
  Table 3;
* :mod:`~repro.bench.syncservice` — the OpenOffice-style file-synchronisation
  benchmark of Figure 7/8, with cloud or local lock files;
* :mod:`~repro.bench.sharing` — the two-client sharing-latency experiment of
  Figure 9 (SCFS variants vs a Dropbox-like service);
* :mod:`~repro.bench.sweeps` — the metadata-cache and PNS parameter sweeps of
  Figure 10;
* :mod:`~repro.bench.costs` — the operation/usage cost analysis of Figure 11;
* :mod:`~repro.bench.report` — plain-text table rendering used by the
  ``benchmarks/`` pytest files and the examples.
"""

from repro.bench.targets import BenchTarget, build_target, SCFS_VARIANT_NAMES, ALL_TARGET_NAMES
from repro.bench.filebench import (
    MicroBenchmarkParams,
    run_microbenchmark,
    run_microbenchmark_table,
    MICRO_BENCHMARKS,
)
from repro.bench.syncservice import SyncBenchmarkResult, run_sync_benchmark
from repro.bench.sharing import SharingResult, run_sharing_benchmark, run_dropbox_sharing
from repro.bench.sweeps import run_metadata_cache_sweep, run_pns_sweep
from repro.bench.costs import (
    operation_costs_per_day,
    cost_per_operation,
    cost_per_file_day,
)
from repro.bench.report import render_table

__all__ = [
    "BenchTarget",
    "build_target",
    "SCFS_VARIANT_NAMES",
    "ALL_TARGET_NAMES",
    "MicroBenchmarkParams",
    "run_microbenchmark",
    "run_microbenchmark_table",
    "MICRO_BENCHMARKS",
    "SyncBenchmarkResult",
    "run_sync_benchmark",
    "SharingResult",
    "run_sharing_benchmark",
    "run_dropbox_sharing",
    "run_metadata_cache_sweep",
    "run_pns_sweep",
    "operation_costs_per_day",
    "cost_per_operation",
    "cost_per_file_day",
    "render_table",
]
