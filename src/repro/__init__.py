"""SCFS: A Shared Cloud-backed File System — full Python reproduction.

This package reproduces the system described in *"SCFS: A Shared Cloud-backed
File System"* (Bessani et al., USENIX ATC 2014) together with every substrate
it depends on, on top of a deterministic simulation of cloud storage and
coordination services.

Quick start::

    from repro import SCFSDeployment, Permission

    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=7)
    alice = deployment.create_agent("alice")
    bob = deployment.create_agent("bob")

    alice.write_file("/report.txt", b"cloud-of-clouds!", shared=True)
    alice.setfacl("/report.txt", "bob", Permission.READ)
    deployment.drain()                       # let background uploads finish
    print(bob.read_file("/report.txt"))

Sub-packages
------------
``repro.simenv``
    Deterministic simulation environment (clock, latency models, failures).
``repro.clouds``
    Simulated eventually-consistent object stores with pricing and ACLs.
``repro.crypto``
    Erasure coding, secret sharing, hashing and authenticated encryption.
``repro.coordination``
    DepSpace-like tuple space and ZooKeeper-like tree, replicated, with locks.
``repro.depsky``
    The DepSky cloud-of-clouds storage protocols.
``repro.core``
    SCFS itself: agent, caches, metadata/storage/lock services, PNS, GC,
    POSIX-like file system façade and deployment helpers.
``repro.baselines``
    S3FS-like, S3QL-like, LocalFS and Dropbox-like comparison systems.
``repro.bench``
    Workloads and harnesses regenerating every table and figure of the paper.
"""

from repro.common.types import Permission, Principal
from repro.core.config import SCFSConfig
from repro.core.deployment import SCFSDeployment
from repro.core.filesystem import SCFSFileSystem, DurabilityLevel
from repro.core.modes import OperationMode, BackendKind, VARIANTS
from repro.simenv.environment import Simulation

__version__ = "1.0.0"

__all__ = [
    "Permission",
    "Principal",
    "SCFSConfig",
    "SCFSDeployment",
    "SCFSFileSystem",
    "DurabilityLevel",
    "OperationMode",
    "BackendKind",
    "VARIANTS",
    "Simulation",
    "__version__",
]
